//! `visim-results-v2` cell builders for the experiment runners.
//!
//! The figure binaries pair each text row with one machine-readable
//! cell built here and pushed into a `visim_obs::schema::ResultsDoc`.
//! One cell corresponds to one (benchmark × configuration) simulation;
//! a failed simulation becomes a `"status": "failed"` cell carrying the
//! [`SimError`] variant name, so JSON consumers can distinguish a
//! *crashed* cell from a *drifted* one.

use visim_cpu::{CpuStats, Summary};
use visim_obs::trace::Trace;
use visim_obs::{schema, Json};
use visim_util::SimError;

use crate::bench::Bench;
use crate::config::Arch;
use crate::experiment::{Fig1Bar, Fig2Row, Fig3Row, SweepPoint};

/// The payload shared by every timed (pipeline) cell: headline cycle
/// count plus the full [`Summary`] serialization
/// ([`Summary::json_members`] keeps the member shape in one place).
fn timed_payload(s: &Summary) -> Vec<(&'static str, Json)> {
    let mut members = vec![("cycles", Json::from(s.cycles()))];
    members.extend(s.json_members());
    members
}

/// A failed cell for the benchmark (or kernel) named `name` under
/// `config`.
pub fn failed_cell(name: &str, config: Json, e: &SimError) -> Json {
    schema::failed_cell(name, config, e.kind(), &e.to_string())
}

/// Configuration for a whole-figure failure, where the runner reports
/// only the benchmark's first failing cell, not its configuration.
pub fn figure_config(figure: &str) -> Json {
    Json::obj(vec![("figure", Json::from(figure))])
}

/// Figure 1 cell configuration: architecture label + VIS flag.
pub fn fig1_config(arch: Arch, vis: bool) -> Json {
    Json::obj(vec![
        ("figure", Json::from("fig1")),
        ("arch", Json::from(arch.label())),
        ("vis", Json::from(vis)),
    ])
}

/// One Figure 1 bar as a result cell.
pub fn fig1_cell(bench: Bench, bar: &Fig1Bar) -> Json {
    schema::ok_cell(
        bench.name(),
        fig1_config(bar.arch, bar.vis),
        timed_payload(&bar.summary),
    )
}

/// Figure 2 cell configuration: counted run, base or VIS variant.
pub fn fig2_config(vis: bool) -> Json {
    Json::obj(vec![
        ("figure", Json::from("fig2")),
        ("variant", Json::from(if vis { "vis" } else { "base" })),
    ])
}

fn counted_payload(stats: &CpuStats) -> Vec<(&'static str, Json)> {
    vec![("cpu", stats.to_json())]
}

/// One Figure 2 row as two result cells (base then VIS).
pub fn fig2_cells(row: &Fig2Row) -> Vec<Json> {
    vec![
        schema::ok_cell(
            row.bench.name(),
            fig2_config(false),
            counted_payload(&row.base),
        ),
        schema::ok_cell(
            row.bench.name(),
            fig2_config(true),
            counted_payload(&row.vis),
        ),
    ]
}

/// Figure 3 cell configuration: 4-way ooo, VIS with/without prefetch.
pub fn fig3_config(prefetch: bool) -> Json {
    Json::obj(vec![
        ("figure", Json::from("fig3")),
        ("arch", Json::from(Arch::Ooo4.label())),
        (
            "variant",
            Json::from(if prefetch { "vis+pf" } else { "vis" }),
        ),
    ])
}

/// One Figure 3 row as two result cells (VIS then VIS+prefetch).
pub fn fig3_cells(row: &Fig3Row) -> Vec<Json> {
    vec![
        schema::ok_cell(
            row.bench.name(),
            fig3_config(false),
            timed_payload(&row.vis),
        ),
        schema::ok_cell(row.bench.name(), fig3_config(true), timed_payload(&row.pf)),
    ]
}

/// §4.1 sweep cell configuration: which cache is swept and its size.
pub fn sweep_config(cache: &str, bytes: u64) -> Json {
    Json::obj(vec![
        ("figure", Json::from("sweep")),
        ("cache", Json::from(cache)),
        ("bytes", Json::from(bytes)),
        ("arch", Json::from(Arch::Ooo4.label())),
        ("variant", Json::from("vis")),
    ])
}

/// One sweep point as a result cell; `cache` is `"l1"` or `"l2"`.
pub fn sweep_cell(bench: Bench, cache: &str, pt: &SweepPoint) -> Json {
    schema::ok_cell(
        bench.name(),
        sweep_config(cache, pt.bytes),
        timed_payload(&pt.summary),
    )
}

/// A generic timed cell for the ablation/kernel binaries:
/// caller-chosen benchmark (or kernel) name and configuration members.
pub fn timed_cell(name: &str, config: Json, summary: &Summary) -> Json {
    schema::ok_cell(name, config, timed_payload(summary))
}

/// `pipetrace` cell configuration: architecture label + VIS flag.
pub fn pipetrace_config(arch: Arch, vis: bool) -> Json {
    Json::obj(vec![
        ("figure", Json::from("pipetrace")),
        ("arch", Json::from(arch.label())),
        ("vis", Json::from(vis)),
    ])
}

/// One `pipetrace` attribution cell: the aggregate (Figure 1) and
/// trace-derived attributions side by side, both in exact integer units
/// of `1/issue_width` cycles. The `validate` gate checks them equal and
/// summing to `cycles * width`.
pub fn pipetrace_cell(
    bench: Bench,
    arch: Arch,
    vis: bool,
    summary: &Summary,
    trace: &Trace,
) -> Json {
    schema::ok_cell(
        bench.name(),
        pipetrace_config(arch, vis),
        vec![
            ("cycles", Json::from(summary.cycles())),
            ("aggregate", summary.cpu.attribution().to_json()),
            ("trace", trace.attribution.to_json()),
            ("dropped_events", Json::from(trace.dropped)),
        ],
    )
}

/// A generic counted cell (functional counter, no timing model).
pub fn counted_cell(name: &str, config: Json, stats: &CpuStats) -> Json {
    schema::ok_cell(name, config, counted_payload(stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::WorkloadSize;
    use crate::experiment;
    use media_kernels::Variant;

    fn tiny() -> WorkloadSize {
        let mut s = WorkloadSize::tiny();
        s.image_w = 32;
        s.image_h = 32;
        s.dotprod_n = 512;
        s
    }

    #[test]
    fn fig1_cell_round_trips_with_full_payload() {
        let summary =
            experiment::run_timed(Bench::Addition, Arch::Ooo4, None, &tiny(), Variant::VIS);
        let cycles = summary.cycles();
        let bar = Fig1Bar {
            arch: Arch::Ooo4,
            vis: true,
            summary,
        };
        let cell = fig1_cell(Bench::Addition, &bar);
        assert_eq!(cell.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            cell.get("benchmark").and_then(Json::as_str),
            Some("addition")
        );
        assert_eq!(cell.get("cycles").and_then(Json::as_u64), Some(cycles));
        let config = cell.get("config").unwrap();
        assert_eq!(config.get("arch").and_then(Json::as_str), Some("4-way ooo"));
        assert!(cell.get("cpu").and_then(|c| c.get("breakdown")).is_some());
        assert!(cell.get("mem").and_then(|m| m.get("l1_accesses")).is_some());
        assert!(cell
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some());
        assert_eq!(Json::parse(&cell.to_compact()).unwrap(), cell);
    }

    #[test]
    fn failed_cell_names_the_error_variant() {
        let e = SimError::Workload {
            bench: "blend".into(),
            detail: "injected".into(),
        };
        let cell = failed_cell("blend", fig1_config(Arch::InOrder1, false), &e);
        assert_eq!(cell.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(
            cell.get("error_kind").and_then(Json::as_str),
            Some("Workload")
        );
        assert!(cell
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("injected"));
    }

    #[test]
    fn fig2_cells_carry_both_variants() {
        let size = tiny();
        let base = experiment::run_counted(Bench::Thresh, &size, Variant::SCALAR);
        let vis = experiment::run_counted(Bench::Thresh, &size, Variant::VIS);
        let row = Fig2Row {
            bench: Bench::Thresh,
            base,
            vis,
        };
        let cells = fig2_cells(&row);
        assert_eq!(cells.len(), 2);
        let variant = |c: &Json| {
            c.get("config")
                .and_then(|c| c.get("variant"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        };
        assert_eq!(variant(&cells[0]), "base");
        assert_eq!(variant(&cells[1]), "vis");
        let retired = |c: &Json| {
            c.get("cpu")
                .and_then(|c| c.get("retired"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert!(retired(&cells[1]) < retired(&cells[0]), "VIS shrinks count");
    }
}
