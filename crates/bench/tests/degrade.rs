//! End-to-end acceptance test for graceful degradation: a deliberately
//! failing benchmark must not take down the `fig1` binary — the other
//! eleven benchmarks still produce bars, the failure becomes an error
//! row, the partial output lands under `results/partial/`, and the
//! process exits nonzero.

use std::process::Command;

#[test]
fn fig1_survives_an_injected_benchmark_failure() {
    let dir = std::env::temp_dir().join(format!("visim-degrade-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_fig1"))
        .arg("tiny")
        .env("VISIM_FAIL_BENCH", "blend")
        .current_dir(&dir)
        .output()
        .expect("fig1 runs");

    assert!(!out.status.success(), "a failed benchmark exits nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    // The injected benchmark became an error row...
    assert!(
        stdout.contains("blend: ERROR:") && stdout.contains("VISIM_FAIL_BENCH"),
        "error row present:\n{stdout}"
    );
    // ...while the other eleven still produced all six bars.
    for bench in [
        "addition", "conv", "dotprod", "scaling", "thresh", "cjpeg", "djpeg", "cjpeg-np",
        "djpeg-np", "mpeg-enc", "mpeg-dec",
    ] {
        let section = format!("=== {bench} ===");
        let idx = stdout
            .find(&section)
            .unwrap_or_else(|| panic!("{section} missing"));
        assert!(
            stdout[idx..].contains("VIS 4-way ooo"),
            "{bench} produced bars"
        );
    }

    // Partial results preserved for the healthy benchmarks.
    let partial = dir.join("results/partial/fig1.txt");
    assert!(stderr.contains("partial results"), "{stderr}");
    let contents = std::fs::read_to_string(&partial).expect("partial file written");
    assert!(contents.contains("blend: ERROR:"));
    assert!(contents.contains("=== mpeg-dec ==="));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig1_exits_zero_when_everything_succeeds() {
    let dir = std::env::temp_dir().join(format!("visim-degrade-ok-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_fig1"))
        .arg("tiny")
        .env_remove("VISIM_FAIL_BENCH")
        .current_dir(&dir)
        .output()
        .expect("fig1 runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("ERROR:"));
    assert!(stdout.contains("=== mpeg-dec ==="));

    std::fs::remove_dir_all(&dir).ok();
}
