//! Trace-cache equivalence: the record-once/replay-many engine must be
//! invisible in the results. Text output is byte-identical with the
//! cache on or off, at any worker count, and whether a stream came from
//! memory, disk, or a fresh recording; the JSON artifacts agree after
//! scrubbing the run-varying wall-clock members. Corrupted on-disk
//! traces are purged and re-recorded, never trusted and never fatal.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use visim_obs::Json;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-tcache-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run one figure binary at tiny size in `dir` with a hermetic
/// trace-cache environment plus the given overrides.
fn run_bin(exe: &str, dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(exe);
    cmd.arg("tiny")
        .args(args)
        .current_dir(dir)
        .env_remove("VISIM_NO_TRACE_CACHE")
        .env_remove("VISIM_TRACE_MB")
        .env_remove("VISIM_TRACE_DIR")
        .env_remove("VISIM_SPILL_EMIT_MBPS")
        .env_remove("VISIM_FAIL_BENCH")
        .env("VISIM_JOBS", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("figure binary runs")
}

/// Load `results/json/<bin>.json` from `dir` and drop every
/// run-varying member: the document's `wall_seconds`, `jobs`, and
/// run-level `metrics` (pool timings, trace-cache counters), and each
/// cell's `cell.*` counters (emit/simulate wall clock, replay/hit
/// flags). Everything that remains is simulation output and must be
/// identical however the stream was obtained.
fn scrubbed_json(dir: &Path, bin: &str) -> Json {
    let text = std::fs::read_to_string(dir.join(format!("results/json/{bin}.json"))).unwrap();
    scrub_doc(Json::parse(&text).unwrap())
}

fn scrub_doc(doc: Json) -> Json {
    let Json::Obj(members) = doc else {
        panic!("results doc is an object")
    };
    Json::Obj(
        members
            .into_iter()
            .filter(|(k, _)| k != "wall_seconds" && k != "metrics" && k != "jobs")
            .map(|(k, v)| {
                if k == "cells" {
                    let Json::Arr(cells) = v else {
                        panic!("cells is an array")
                    };
                    (k, Json::Arr(cells.into_iter().map(scrub_cell).collect()))
                } else {
                    (k, v)
                }
            })
            .collect(),
    )
}

fn scrub_cell(cell: Json) -> Json {
    let Json::Obj(members) = cell else {
        return cell;
    };
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| {
                if k == "metrics" {
                    (k, scrub_cell_metrics(v))
                } else {
                    (k, v)
                }
            })
            .collect(),
    )
}

fn scrub_cell_metrics(metrics: Json) -> Json {
    let Json::Obj(members) = metrics else {
        return metrics;
    };
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| {
                if k == "counters" {
                    let Json::Obj(counters) = v else {
                        return (k, v);
                    };
                    (
                        k,
                        Json::Obj(
                            counters
                                .into_iter()
                                .filter(|(name, _)| !name.starts_with("cell."))
                                .collect(),
                        ),
                    )
                } else {
                    (k, v)
                }
            })
            .collect(),
    )
}

#[test]
fn fig1_is_identical_with_cache_on_env_off_and_flag_off() {
    let on = scratch_dir("fig1-on");
    let env_off = scratch_dir("fig1-envoff");
    let flag_off = scratch_dir("fig1-flagoff");
    let exe = env!("CARGO_BIN_EXE_fig1");
    let a = run_bin(exe, &on, &[], &[]);
    let b = run_bin(exe, &env_off, &[], &[("VISIM_NO_TRACE_CACHE", "1")]);
    let c = run_bin(exe, &flag_off, &["--no-trace-cache"], &[]);
    assert!(a.status.success() && b.status.success() && c.status.success());
    assert_eq!(a.stdout, b.stdout, "replay differs from direct emission");
    assert_eq!(a.stdout, c.stdout, "--no-trace-cache differs from env");
    assert_eq!(
        scrubbed_json(&on, "fig1"),
        scrubbed_json(&env_off, "fig1"),
        "JSON artifacts differ (beyond run-varying members) cache on/off"
    );
    assert_eq!(
        scrubbed_json(&env_off, "fig1"),
        scrubbed_json(&flag_off, "fig1")
    );
    for dir in [on, env_off, flag_off] {
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sweep_l1_is_identical_across_cache_modes_and_worker_counts() {
    let on1 = scratch_dir("l1-on1");
    let on8 = scratch_dir("l1-on8");
    let off1 = scratch_dir("l1-off1");
    let exe = env!("CARGO_BIN_EXE_sweep_l1");
    let a = run_bin(exe, &on1, &[], &[]);
    let b = run_bin(exe, &on8, &[], &[("VISIM_JOBS", "8")]);
    let c = run_bin(exe, &off1, &[], &[("VISIM_NO_TRACE_CACHE", "1")]);
    assert!(a.status.success() && b.status.success() && c.status.success());
    assert_eq!(a.stdout, b.stdout, "cache + 8 workers differs from serial");
    assert_eq!(a.stdout, c.stdout, "replay differs from direct emission");
    assert_eq!(
        scrubbed_json(&on1, "sweep_l1"),
        scrubbed_json(&off1, "sweep_l1")
    );
    assert_eq!(
        scrubbed_json(&on1, "sweep_l1"),
        scrubbed_json(&on8, "sweep_l1")
    );
    for dir in [on1, on8, off1] {
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn disk_spill_warms_a_second_process_and_purges_corruption() {
    let dir = scratch_dir("disk");
    let tc = dir.join("trace-cache");
    let tc_str = tc.to_str().unwrap().to_string();
    let exe = env!("CARGO_BIN_EXE_fig1");
    // Force every stream to disk: tiny streams re-emit faster than the
    // spill policy's threshold and would otherwise (rightly) not spill.
    let spill_env = ("VISIM_SPILL_EMIT_MBPS", "1000000");

    let cold = run_bin(
        exe,
        &dir,
        &[],
        &[("VISIM_TRACE_DIR", tc_str.as_str()), spill_env],
    );
    assert!(cold.status.success());
    let vtrc_count = std::fs::read_dir(&tc)
        .expect("spill directory created")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .and_then(|x| x.to_str())
                == Some("vtrc")
        })
        .count();
    // Figure 1 uses 12 benchmarks × {scalar, VIS} = 24 distinct streams.
    assert_eq!(vtrc_count, 24, "one spill file per distinct stream");

    let warm = run_bin(
        exe,
        &dir,
        &[],
        &[("VISIM_TRACE_DIR", tc_str.as_str()), spill_env],
    );
    assert!(warm.status.success());
    assert_eq!(cold.stdout, warm.stdout, "disk-warmed run differs");

    // Corrupt one spill file: the run must still succeed with identical
    // output, purging and re-recording the bad entry.
    let victim = std::fs::read_dir(&tc)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().and_then(|x| x.to_str()) == Some("vtrc"))
        .expect("at least one spill file");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    let healed = run_bin(
        exe,
        &dir,
        &[],
        &[("VISIM_TRACE_DIR", tc_str.as_str()), spill_env],
    );
    assert!(
        healed.status.success(),
        "corrupt spill file must not be fatal"
    );
    assert_eq!(
        cold.stdout, healed.stdout,
        "output differs after corruption"
    );
    let stderr = String::from_utf8_lossy(&healed.stderr);
    assert!(stderr.contains("purged"), "purge not reported: {stderr}");
    let rewritten = std::fs::read(&victim).expect("purged entry re-recorded");
    assert_ne!(rewritten, bytes, "corrupt bytes were left in place");

    std::fs::remove_dir_all(&dir).ok();
}

/// The spill policy: streams that re-emit faster than the configured
/// disk-rate threshold never reach disk. Threshold 0 makes that
/// deterministic (no stream is ever slow enough), so the run leaves no
/// `.vtrc` files and reports every skip — while the results stay
/// byte-identical to a spilling run, because the spill only ever
/// changes wall clock.
#[test]
fn fast_streams_skip_the_disk_spill() {
    let dir = scratch_dir("nospill");
    let tc = dir.join("trace-cache");
    let tc_str = tc.to_str().unwrap().to_string();
    let exe = env!("CARGO_BIN_EXE_fig1");
    let out = run_bin(
        exe,
        &dir,
        &[],
        &[
            ("VISIM_TRACE_DIR", tc_str.as_str()),
            ("VISIM_SPILL_EMIT_MBPS", "0"),
        ],
    );
    assert!(out.status.success());
    let vtrc_count = std::fs::read_dir(&tc)
        .map(|rd| {
            rd.filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .and_then(|x| x.to_str())
                    == Some("vtrc")
            })
            .count()
        })
        .unwrap_or(0);
    assert_eq!(vtrc_count, 0, "threshold 0 must never spill");
    let text = std::fs::read_to_string(dir.join("results/json/fig1.json")).unwrap();
    let doc = Json::parse(&text).unwrap();
    let skipped = doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("trace_cache.spill_skipped"))
        .and_then(Json::as_u64);
    assert_eq!(skipped, Some(24), "every distinct stream reports its skip");
    std::fs::remove_dir_all(&dir).ok();
}
