//! Sampled-simulation determinism and store-isolation acceptance tests.
//!
//! A sampled run must be byte-identical across worker counts and
//! repeats (windows fan out over the pool, but scheduling never
//! influences the estimate), must compose with `--resume` (sampled
//! cells live under sampling-aware store keys), and must never leak
//! estimates into exact runs through the store — in either direction.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use visim_obs::Json;

/// Small enough that every tiny-size stream yields several windows.
const GEOMETRY: &str = "200:1000";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-sampling-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_fig1(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig1"));
    cmd.arg("tiny")
        .args(args)
        .current_dir(dir)
        .env_remove("VISIM_NO_TRACE_CACHE")
        .env_remove("VISIM_TRACE_MB")
        .env_remove("VISIM_TRACE_DIR")
        .env_remove("VISIM_FAIL_BENCH")
        .env_remove("VISIM_STORE_DIR")
        .env_remove("VISIM_RESUME")
        .env_remove("VISIM_NO_STORE")
        .env_remove("VISIM_FAULT")
        .env_remove("VISIM_SAMPLE")
        .env("VISIM_JOBS", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("fig1 runs")
}

fn doc(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("results/json/fig1.json")).unwrap();
    Json::parse(&text).unwrap()
}

fn doc_counter(dir: &Path, name: &str) -> u64 {
    doc(dir)
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("doc metrics counter {name} present"))
}

/// Per-cell `cell.sampling.mode` values across the document (absent
/// counters count as 0 = exact).
fn sampling_modes(dir: &Path) -> Vec<u64> {
    let d = doc(dir);
    let cells = d.get("cells").and_then(Json::elements).expect("cells");
    cells
        .iter()
        .map(|cell| {
            cell.get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("cell.sampling.mode"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        })
        .collect()
}

/// Drop run-varying members (wall clock, jobs, run metrics) and each
/// cell's wall-clock-bearing `cell.emit_micros`/`cell.simulate_micros`
/// counters — but KEEP the `cell.sampling.*` counters: they are part of
/// the simulation output and must themselves be deterministic.
fn scrubbed(dir: &Path) -> Json {
    let Json::Obj(members) = doc(dir) else {
        panic!("results doc is an object")
    };
    Json::Obj(
        members
            .into_iter()
            .filter(|(k, _)| k != "wall_seconds" && k != "metrics" && k != "jobs")
            .map(|(k, v)| {
                if k != "cells" {
                    return (k, v);
                }
                let Json::Arr(cells) = v else {
                    panic!("cells is an array")
                };
                (k, Json::Arr(cells.into_iter().map(scrub_cell).collect()))
            })
            .collect(),
    )
}

fn scrub_cell(cell: Json) -> Json {
    let Json::Obj(members) = cell else {
        return cell;
    };
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| {
                if k != "metrics" {
                    return (k, v);
                }
                let Json::Obj(metrics) = v else {
                    return (k, v);
                };
                (
                    k,
                    Json::Obj(
                        metrics
                            .into_iter()
                            .map(|(mk, mv)| {
                                if mk != "counters" {
                                    return (mk, mv);
                                }
                                let Json::Obj(counters) = mv else {
                                    return (mk, mv);
                                };
                                (
                                    mk,
                                    Json::Obj(
                                        counters
                                            .into_iter()
                                            .filter(|(name, _)| {
                                                name.starts_with("cell.sampling.")
                                                    || !name.starts_with("cell.")
                                            })
                                            .collect(),
                                    ),
                                )
                            })
                            .collect(),
                    ),
                )
            })
            .collect(),
    )
}

/// Sampled output — including every `cell.sampling.*` counter — is
/// byte-identical across worker counts (window fan-out included) and
/// across repeated runs, and the env knob agrees with the CLI flag.
#[test]
fn sampled_runs_are_deterministic_across_jobs_and_repeats() {
    let serial = scratch_dir("jobs1");
    let par = scratch_dir("jobs8");
    let rep = scratch_dir("jobs8-rep");
    let env = scratch_dir("env");
    let out_serial = run_fig1(&serial, &["--sample", GEOMETRY, "--no-store"], &[]);
    let out_par = run_fig1(
        &par,
        &["--sample", GEOMETRY, "--no-store"],
        &[("VISIM_JOBS", "8")],
    );
    let out_rep = run_fig1(
        &rep,
        &["--sample", GEOMETRY, "--no-store"],
        &[("VISIM_JOBS", "8")],
    );
    let out_env = run_fig1(
        &env,
        &["--no-store"],
        &[("VISIM_SAMPLE", GEOMETRY), ("VISIM_JOBS", "8")],
    );
    for (label, out) in [
        ("serial", &out_serial),
        ("jobs8", &out_par),
        ("repeat", &out_rep),
        ("env", &out_env),
    ] {
        assert!(
            out.status.success(),
            "{label} sampled run fails: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(out_serial.stdout, out_par.stdout, "jobs 1 vs 8 diverge");
    assert_eq!(out_par.stdout, out_rep.stdout, "repeat diverges");
    assert_eq!(out_par.stdout, out_env.stdout, "env vs flag diverge");
    let reference = scrubbed(&serial);
    assert_eq!(reference, scrubbed(&par), "jobs 1 vs 8 JSON diverges");
    assert_eq!(reference, scrubbed(&rep), "repeat JSON diverges");
    assert_eq!(reference, scrubbed(&env), "env vs flag JSON diverges");

    // The run actually sampled: every cell declares a mode, and the
    // majority were estimated from windows rather than falling back.
    let modes = sampling_modes(&serial);
    assert_eq!(modes.len(), 72, "all 72 cells present");
    assert!(modes.iter().all(|&m| m == 1 || m == 2), "{modes:?}");
    let sampled = modes.iter().filter(|&&m| m == 1).count();
    assert!(sampled > 36, "only {sampled}/72 cells were sampled");
}

/// Sampled cells persist under sampling-aware keys and a sampled
/// `--resume` serves every one of them back byte-identically.
#[test]
fn sampled_resume_is_byte_identical() {
    let dir = scratch_dir("resume");
    let first = run_fig1(&dir, &["--sample", GEOMETRY], &[("VISIM_JOBS", "8")]);
    assert!(first.status.success());
    let resumed = run_fig1(
        &dir,
        &["--sample", GEOMETRY, "--resume"],
        &[("VISIM_JOBS", "8")],
    );
    assert!(resumed.status.success());
    assert_eq!(first.stdout, resumed.stdout, "sampled resume diverges");
    assert_eq!(
        doc_counter(&dir, "store.hit"),
        72,
        "all sampled cells served from the store"
    );
}

/// Store isolation between modes: an exact `--resume` over a store
/// populated by a sampled run must not be served a single estimate
/// (and vice versa), because the sampling geometry is folded into
/// every timed cell's content address.
#[test]
fn sampled_and_exact_cells_never_cross_serve() {
    let exact_ref = scratch_dir("exact-ref");
    let ref_out = run_fig1(&exact_ref, &["--no-store"], &[]);
    assert!(ref_out.status.success());

    // Populate a store with sampled cells, then resume WITHOUT
    // sampling: every exact cell must recompute (zero hits) and match
    // the exact reference bit for bit.
    let dir = scratch_dir("cross");
    let sampled = run_fig1(&dir, &["--sample", GEOMETRY], &[]);
    assert!(sampled.status.success());
    let exact = run_fig1(&dir, &["--resume"], &[]);
    assert!(exact.status.success());
    assert_eq!(
        doc_counter(&dir, "store.hit"),
        0,
        "exact resume was served sampled entries"
    );
    assert_eq!(
        exact.stdout, ref_out.stdout,
        "exact run over a sampled store diverges from the exact reference"
    );

    // And back: a sampled resume over the now-mixed store serves only
    // the sampled entries, reproducing the original sampled output.
    let resampled = run_fig1(&dir, &["--sample", GEOMETRY, "--resume"], &[]);
    assert!(resampled.status.success());
    assert_eq!(
        doc_counter(&dir, "store.hit"),
        72,
        "sampled resume should hit its own 72 entries"
    );
    assert_eq!(resampled.stdout, sampled.stdout, "sampled resume diverges");

    // A different geometry is a different address: no hits.
    let other = run_fig1(&dir, &["--sample", "400:2000", "--resume"], &[]);
    assert!(other.status.success());
    assert_eq!(
        doc_counter(&dir, "store.hit"),
        0,
        "a different sampling geometry must not share entries"
    );
}
