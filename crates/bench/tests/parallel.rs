//! Parallel-vs-serial determinism: the experiment executor must produce
//! byte-identical figure output whether one worker or eight ran the
//! simulations — including on the graceful-degradation path, where a
//! fault-injected benchmark becomes an error row and the partial
//! artifacts land under `results/partial/`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-parallel-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_fig1(dir: &Path, jobs: &str, fail_bench: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig1"));
    cmd.arg("tiny").env("VISIM_JOBS", jobs).current_dir(dir);
    match fail_bench {
        Some(bench) => {
            cmd.env("VISIM_FAIL_BENCH", bench);
        }
        None => {
            cmd.env_remove("VISIM_FAIL_BENCH");
        }
    }
    cmd.output().expect("fig1 runs")
}

#[test]
fn fig1_output_is_byte_identical_across_worker_counts() {
    let dir = scratch_dir("ok");
    let serial = run_fig1(&dir, "1", None);
    let parallel = run_fig1(&dir, "8", None);
    assert!(serial.status.success(), "serial run succeeds");
    assert!(parallel.status.success(), "parallel run succeeds");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "VISIM_JOBS=1 and VISIM_JOBS=8 must render the same figure"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig1_fault_injection_is_deterministic_across_worker_counts() {
    let serial_dir = scratch_dir("fault-serial");
    let parallel_dir = scratch_dir("fault-parallel");
    let serial = run_fig1(&serial_dir, "1", Some("blend"));
    let parallel = run_fig1(&parallel_dir, "8", Some("blend"));

    assert!(!serial.status.success(), "injected fault exits nonzero");
    assert!(!parallel.status.success(), "injected fault exits nonzero");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "degraded output must also be byte-identical across worker counts"
    );
    let stdout = String::from_utf8_lossy(&parallel.stdout);
    assert!(stdout.contains("blend: ERROR:"), "error row:\n{stdout}");

    // Both runs preserve the shared partial stream and the
    // uniquely-named per-benchmark failure artifact.
    for dir in [&serial_dir, &parallel_dir] {
        let stream = dir.join("results/partial/fig1.txt");
        let per_bench = dir.join("results/partial/fig1.blend.txt");
        let stream = std::fs::read_to_string(&stream).expect("partial stream written");
        assert!(stream.contains("blend: ERROR:"));
        let artifact = std::fs::read_to_string(&per_bench).expect("per-benchmark artifact written");
        assert!(artifact.contains("VISIM_FAIL_BENCH"), "{artifact}");
    }
    let serial_stream =
        std::fs::read_to_string(serial_dir.join("results/partial/fig1.txt")).unwrap();
    let parallel_stream =
        std::fs::read_to_string(parallel_dir.join("results/partial/fig1.txt")).unwrap();
    assert_eq!(serial_stream, parallel_stream, "partial files identical");

    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&parallel_dir).ok();
}
