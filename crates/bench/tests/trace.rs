//! Cycle-level tracing invariants, end to end:
//!
//! * a property test over random event streams and small ring
//!   capacities — eviction must preserve begin/end pairing and
//!   per-lane timestamp order in the Chrome export, and the
//!   attribution aggregates must stay exact no matter how many events
//!   the ring dropped;
//! * an integration test running a real benchmark under
//!   [`visim::experiment::try_run_traced`] — the exported JSON must
//!   round-trip through the `visim-obs` parser, and the trace-derived
//!   attribution must equal the pipeline's aggregate Figure 1
//!   breakdown cycle for cycle;
//! * a zero-cost check — a traced run must produce the exact same
//!   [`Summary`] serialization as an untraced run.

use std::collections::BTreeMap;

use media_kernels::Variant;
use visim::bench::{Bench, WorkloadSize};
use visim::config::Arch;
use visim::experiment::{try_run_timed, try_run_traced};
use visim_obs::trace::{Attribution, InstSpan, InstantKind, TraceRing, TraceStall};
use visim_obs::Json;
use visim_util::prop::{self, Config};
use visim_util::{prop_assert, prop_assert_eq};

fn tiny() -> WorkloadSize {
    let mut s = WorkloadSize::tiny();
    s.image_w = 32;
    s.image_h = 32;
    s.dotprod_n = 512;
    s
}

/// Walk a serialized Chrome trace document: every `"B"` must close with
/// an `"E"` on the same tid, depth never goes negative, and within each
/// tid the timestamps never decrease. Returns the event count.
fn check_chrome_doc(doc: &Json) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::elements)
        .ok_or("missing traceEvents")?;
    let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event lacks ph")?;
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        if let Some(ts) = ev.get("ts").and_then(Json::as_f64) {
            let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
            if ts < *prev {
                return Err(format!("tid {tid}: ts went backwards ({prev} -> {ts})"));
            }
            *prev = ts;
        }
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("tid {tid}: E without matching B"));
                }
            }
            _ => {}
        }
    }
    if let Some((tid, d)) = depth.iter().find(|&(_, &d)| d != 0) {
        return Err(format!("tid {tid}: {d} unclosed B events"));
    }
    Ok(events.len())
}

/// One randomly generated cycle of ring activity.
type GenCycle = (
    u32,  // retired (0..=width)
    u8,   // stall selector when nothing retires
    bool, // also record an instruction span ending this cycle
    u8,   // span length in cycles
    bool, // also record an instant event
    u8,   // instant-kind selector
);

#[test]
fn ring_eviction_preserves_pairing_and_exact_attribution() {
    const WIDTH: u32 = 4;
    prop::check(
        Config::cases(48),
        |rng| {
            let cap = rng.gen_range(0usize..12);
            let cycles: Vec<GenCycle> = rng.vec(1..60, |r| {
                (
                    r.gen_range(0u32..WIDTH + 1),
                    r.u8(),
                    r.bool(),
                    r.gen_range(1u8..20),
                    r.bool(),
                    r.u8(),
                )
            });
            (cap, cycles)
        },
        |(cap, cycles)| {
            let mut ring = TraceRing::new(*cap);
            ring.set_width(WIDTH);
            let mut expect = Attribution {
                width: WIDTH as u64,
                ..Attribution::default()
            };
            let mut seq = 0u64;
            for (c, &(retired, stall_sel, with_span, span_len, with_instant, kind_sel)) in
                cycles.iter().enumerate()
            {
                let now = c as u64;
                ring.set_now(now);
                let stall = (retired < WIDTH).then_some(match stall_sel % 3 {
                    0 => TraceStall::FuStall,
                    1 => TraceStall::L1Hit,
                    _ => TraceStall::L1Miss,
                });
                ring.sample(retired, stall);
                expect.account(retired, stall);
                if with_span {
                    let fetch = now.saturating_sub(span_len as u64);
                    ring.span(InstSpan {
                        seq,
                        pc: 0x1000 + 4 * seq,
                        op: "int_alu",
                        fetch,
                        dispatch: fetch,
                        issue: now.saturating_sub(1),
                        complete: now,
                        retire: now,
                    });
                    seq += 1;
                }
                if with_instant {
                    let kind = InstantKind::ALL[kind_sel as usize % InstantKind::ALL.len()];
                    ring.instant(kind, 0x2000 + now, 1);
                }
            }
            // Aggregates are exact regardless of capacity or eviction.
            prop_assert!(ring.len() <= *cap, "ring respects its capacity");
            prop_assert_eq!(ring.attribution(), expect);
            prop_assert_eq!(
                ring.attribution().total_units(),
                cycles.len() as u64 * WIDTH as u64
            );
            let trace = ring.into_trace();
            // Whatever survived eviction exports balanced and ordered.
            let doc = trace.chrome_trace(vec![("test", Json::from("prop"))]);
            check_chrome_doc(&doc)?;
            let reparsed = Json::parse(&doc.to_compact())
                .map_err(|e| format!("export does not re-parse: {e}"))?;
            prop_assert_eq!(&reparsed, &doc);
            Ok(())
        },
    );
}

#[test]
fn traced_tiny_run_round_trips_and_matches_aggregate() {
    let size = tiny();
    let (summary, trace) = try_run_traced(
        Bench::Blend,
        Arch::Ooo4,
        None,
        &size,
        Variant::VIS,
        TraceRing::new(1 << 18),
    )
    .expect("traced run succeeds");
    assert!(!trace.events.is_empty(), "a real run records events");
    assert_eq!(trace.dropped, 0, "tiny run fits the ring");
    // The trace-derived attribution equals the aggregate Figure 1
    // breakdown exactly, and together they account for every issue
    // slot of every cycle.
    let agg = summary.cpu.attribution();
    assert_eq!(trace.attribution, agg);
    assert_eq!(
        trace.attribution.total_units(),
        summary.cycles() * agg.width,
        "Busy + FU stall + L1 hit + L1 miss == cycles x width"
    );
    // The export is accepted by the visim-obs parser and balanced.
    let doc = trace.chrome_trace(vec![("benchmark", Json::from("blend"))]);
    let mut text = doc.to_pretty();
    text.push('\n');
    let parsed = Json::parse(&text).expect("export parses");
    let n = check_chrome_doc(&parsed).expect("export is balanced");
    assert!(n > 0);
    assert_eq!(parsed, doc, "pretty-print round-trip is lossless");
    // A run with real memory traffic surfaces microarchitectural
    // instants.
    assert!(
        trace.instant_count(InstantKind::L1Miss) > 0,
        "blend at tiny misses in L1"
    );
}

/// Drop the run-varying `cell.*` counters (emit/simulate wall clock,
/// trace-cache hit flags) from a serialized [`Summary`]; everything
/// left is simulation output.
fn scrub_cell_counters(doc: Json) -> Json {
    let Json::Obj(members) = doc else { return doc };
    Json::Obj(
        members
            .into_iter()
            .filter(|(k, _)| !k.starts_with("cell."))
            .map(|(k, v)| match v {
                Json::Obj(_) => (k, scrub_cell_counters(v)),
                other => (k, other),
            })
            .collect(),
    )
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let size = tiny();
    let plain = try_run_timed(Bench::Conv, Arch::InOrder4, None, &size, Variant::SCALAR)
        .expect("plain run succeeds");
    let (traced, trace) = try_run_traced(
        Bench::Conv,
        Arch::InOrder4,
        None,
        &size,
        Variant::SCALAR,
        TraceRing::new(256),
    )
    .expect("traced run succeeds");
    assert_eq!(plain.cycles(), traced.cycles());
    assert_eq!(
        scrub_cell_counters(plain.to_json()).to_compact(),
        scrub_cell_counters(traced.to_json()).to_compact(),
        "tracing must not change any statistic"
    );
    assert!(trace.dropped > 0, "a 256-event ring overflows on conv");
    assert_eq!(
        trace.attribution,
        traced.cpu.attribution(),
        "aggregates stay exact through heavy eviction"
    );
}
