//! Crash-safety equivalence: a run that is SIGKILLed mid-flight and
//! then resumed must produce byte-identical text output and (after
//! scrubbing run-varying wall-clock members) identical JSON artifacts
//! to an uninterrupted run — at any worker count. The result store
//! itself must be invisible in the results: store on, store off, and
//! resume-from-store runs all agree, and deterministic failures served
//! from the store reproduce the original failing run exactly.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

use visim_obs::Json;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a fig1-tiny command running in `dir` with a hermetic store /
/// cache / fault environment plus the given overrides. The store uses
/// the binaries' default `results/store` under `dir`.
fn fig1_cmd(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig1"));
    cmd.arg("tiny")
        .args(args)
        .current_dir(dir)
        .env_remove("VISIM_NO_TRACE_CACHE")
        .env_remove("VISIM_TRACE_MB")
        .env_remove("VISIM_TRACE_DIR")
        .env_remove("VISIM_FAIL_BENCH")
        .env_remove("VISIM_STORE_DIR")
        .env_remove("VISIM_RESUME")
        .env_remove("VISIM_NO_STORE")
        .env_remove("VISIM_FAULT")
        .env("VISIM_JOBS", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd
}

fn run_fig1(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Output {
    fig1_cmd(dir, args, envs).output().expect("fig1 runs")
}

/// Load `results/json/fig1.json` from `dir` and drop every run-varying
/// member: the document's `wall_seconds`, `jobs`, and run-level
/// `metrics` (pool timings, store/retry/fault counters), plus each
/// cell's `cell.*` counters. Everything that remains is simulation
/// output and must be identical however (and in how many processes)
/// the run was executed.
fn scrubbed_json(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("results/json/fig1.json")).unwrap();
    scrub_doc(Json::parse(&text).unwrap())
}

fn doc_counter(dir: &Path, name: &str) -> u64 {
    let text = std::fs::read_to_string(dir.join("results/json/fig1.json")).unwrap();
    Json::parse(&text)
        .unwrap()
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("doc metrics counter {name} present"))
}

fn scrub_doc(doc: Json) -> Json {
    let Json::Obj(members) = doc else {
        panic!("results doc is an object")
    };
    Json::Obj(
        members
            .into_iter()
            .filter(|(k, _)| k != "wall_seconds" && k != "metrics" && k != "jobs")
            .map(|(k, v)| {
                if k == "cells" {
                    let Json::Arr(cells) = v else {
                        panic!("cells is an array")
                    };
                    (k, Json::Arr(cells.into_iter().map(scrub_cell).collect()))
                } else {
                    (k, v)
                }
            })
            .collect(),
    )
}

fn scrub_cell(cell: Json) -> Json {
    let Json::Obj(members) = cell else {
        return cell;
    };
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| {
                if k == "metrics" {
                    (k, scrub_cell_metrics(v))
                } else {
                    (k, v)
                }
            })
            .collect(),
    )
}

fn scrub_cell_metrics(metrics: Json) -> Json {
    let Json::Obj(members) = metrics else {
        return metrics;
    };
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| {
                if k == "counters" {
                    let Json::Obj(counters) = v else {
                        return (k, v);
                    };
                    (
                        k,
                        Json::Obj(
                            counters
                                .into_iter()
                                .filter(|(name, _)| !name.starts_with("cell."))
                                .collect(),
                        ),
                    )
                } else {
                    (k, v)
                }
            })
            .collect(),
    )
}

/// Count the `.vcell` entries currently in `dir`'s store.
fn store_entries(dir: &Path) -> usize {
    std::fs::read_dir(dir.join("results/store"))
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "vcell"))
                .count()
        })
        .unwrap_or(0)
}

/// The tentpole acceptance check: start a fig1 run, SIGKILL it at a
/// seeded pseudo-random point after the first cell has been persisted,
/// resume with `--resume`, and demand byte-identical text plus
/// scrub-identical JSON against an uninterrupted reference run.
fn kill_then_resume_matches_reference(jobs: &str, seed: u64) {
    // Uninterrupted reference (serial, store on): the ground truth.
    let ref_dir = scratch_dir(&format!("ref-j{jobs}"));
    let ref_out = run_fig1(&ref_dir, &[], &[]);
    assert!(ref_out.status.success(), "reference run fails");

    // Victim run at the requested worker count, killed mid-flight.
    let dir = scratch_dir(&format!("kill-j{jobs}"));
    let mut child = fig1_cmd(&dir, &[], &[("VISIM_JOBS", jobs)])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim spawns");
    // Wait until at least one cell is durable, then add a seeded
    // pseudo-random extra delay so different runs die at different
    // points in the schedule (SplitMix64 step over the seed).
    let deadline = Instant::now() + Duration::from_secs(60);
    while store_entries(&dir) == 0
        && child.try_wait().expect("victim polls").is_none()
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    std::thread::sleep(Duration::from_millis(z % 80));
    child.kill().ok(); // SIGKILL; a naturally-finished child is fine too
    child.wait().expect("victim reaped");
    let entries_after_kill = store_entries(&dir);
    assert!(
        entries_after_kill > 0,
        "no cell became durable before the kill"
    );

    // Resume and compare against the uninterrupted reference.
    let out = run_fig1(&dir, &["--resume"], &[("VISIM_JOBS", jobs)]);
    assert!(
        out.status.success(),
        "resume fails: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        out.stdout, ref_out.stdout,
        "jobs={jobs}: resumed text differs from the uninterrupted run"
    );
    assert_eq!(
        scrubbed_json(&dir),
        scrubbed_json(&ref_dir),
        "jobs={jobs}: resumed JSON differs from the uninterrupted run"
    );
    // The resume actually used the store (every surviving cell was
    // served, not recomputed).
    assert!(
        doc_counter(&dir, "store.hit") >= 1,
        "resume did not serve any cell from the store"
    );
    // All five store counters are surfaced in the doc metrics.
    for name in [
        "store.hit",
        "store.miss",
        "store.writes",
        "store.corrupt_purged",
        "store.stale_purged",
    ] {
        doc_counter(&dir, name);
    }
}

#[test]
fn kill_then_resume_is_byte_identical_serial() {
    kill_then_resume_matches_reference("1", 7);
}

#[test]
fn kill_then_resume_is_byte_identical_jobs8() {
    kill_then_resume_matches_reference("8", 1999);
}

/// The store must be invisible in the results: store-on, store-off, and
/// full-resume runs produce byte-identical text and scrub-identical
/// JSON.
#[test]
fn store_on_off_and_resume_agree() {
    let on = scratch_dir("store-on");
    let off = scratch_dir("store-off");
    let out_on = run_fig1(&on, &[], &[]);
    let out_off = run_fig1(&off, &["--no-store"], &[]);
    assert!(out_on.status.success() && out_off.status.success());
    assert_eq!(out_on.stdout, out_off.stdout, "store changes the text");
    assert_eq!(scrubbed_json(&on), scrubbed_json(&off));
    assert_eq!(store_entries(&off), 0, "--no-store still wrote cells");

    // A fully-warm resume serves every timed cell and still agrees.
    let resumed = run_fig1(&on, &["--resume"], &[]);
    assert!(resumed.status.success());
    assert_eq!(out_on.stdout, resumed.stdout, "resume changes the text");
    assert_eq!(scrubbed_json(&on), scrubbed_json(&off));
    assert_eq!(doc_counter(&on, "store.hit"), 72, "72 cells served");
}

/// Deterministic failures are first-class store entries: a resumed run
/// serves the recorded error without re-running the benchmark, and the
/// degraded output is byte-identical to the original failing run.
#[test]
fn resume_serves_stored_deterministic_failures() {
    let dir = scratch_dir("fail");
    let failed = run_fig1(&dir, &[], &[("VISIM_FAIL_BENCH", "blend")]);
    assert_eq!(failed.status.code(), Some(1), "injected failure exits 1");

    // Resume WITHOUT the injection: the stored failed cells are served
    // back, so the run still reports blend's error rows byte-for-byte.
    let resumed = run_fig1(&dir, &["--resume"], &[]);
    assert_eq!(resumed.status.code(), Some(1), "stored failure re-raised");
    assert_eq!(
        resumed.stdout, failed.stdout,
        "served failure differs from the original failing run"
    );
    assert!(
        doc_counter(&dir, "store.hit") >= 66,
        "surviving cells served"
    );
}
