//! End-to-end acceptance tests for the `visim-results-v2` JSON
//! artifacts: every figure binary writes `results/json/<name>.json`
//! alongside its text output, the document parses with the in-tree
//! parser, carries the full per-cell payload, and an injected failure
//! becomes a `"status": "failed"` cell plus a standalone partial
//! artifact under `results/partial/`.

use std::path::{Path, PathBuf};
use std::process::Command;

use visim_obs::schema::{RESULTS_SCHEMA, STATUS_FAILED, STATUS_OK};
use visim_obs::Json;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-obs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn load_doc(dir: &Path, name: &str) -> Json {
    let path = dir.join(format!("results/json/{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} readable: {e}", path.display()));
    Json::parse(&text).expect("artifact parses")
}

#[test]
fn fig1_writes_a_full_results_document() {
    let dir = temp_dir("fig1");
    let out = Command::new(env!("CARGO_BIN_EXE_fig1"))
        .arg("tiny")
        .env_remove("VISIM_FAIL_BENCH")
        .current_dir(&dir)
        .output()
        .expect("fig1 runs");
    assert!(out.status.success());

    let doc = load_doc(&dir, "fig1");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(RESULTS_SCHEMA)
    );
    assert_eq!(doc.get("size").and_then(Json::as_str), Some("tiny"));
    assert!(doc.get("git_rev").and_then(Json::as_str).is_some());
    assert!(
        doc.get("wall_seconds").and_then(Json::as_f64).unwrap() >= 0.0,
        "wall clock recorded"
    );

    // 12 benchmarks x 6 bars (scalar/VIS x three machines), all ok.
    let cells = doc.get("cells").and_then(Json::elements).expect("cells");
    assert_eq!(cells.len(), 72);
    for cell in cells {
        assert_eq!(
            cell.get("status").and_then(Json::as_str),
            Some(STATUS_OK),
            "every cell ok"
        );
        assert!(cell.get("benchmark").and_then(Json::as_str).is_some());
        assert!(cell.get("cycles").and_then(Json::as_u64).unwrap() > 0);
        // Full per-cell payload: cycle breakdown, instruction mix, and
        // the cache/MSHR/predictor metrics registry.
        let cpu = cell.get("cpu").expect("cpu stats");
        assert!(cpu.get("breakdown").and_then(|b| b.get("busy")).is_some());
        assert!(cpu.get("mix").and_then(|m| m.get("memory")).is_some());
        let metrics = cell.get("metrics").expect("metrics registry");
        let counters = metrics.get("counters").expect("counters");
        assert!(counters.get("cpu.predictor.updates").is_some());
        assert!(counters.get("mem.l1_mshr_peak").is_some());
        let hists = metrics.get("histograms").expect("histograms");
        assert!(hists.get("cpu.window_occupancy").is_some());
    }

    // The run-level registry carries the worker-pool metrics.
    let metrics = doc.get("metrics").expect("run metrics");
    let jobs = metrics
        .get("counters")
        .and_then(|c| c.get("pool.jobs"))
        .and_then(Json::as_u64)
        .expect("pool.jobs counter");
    assert!(jobs > 0, "pool recorded its jobs");
    assert!(
        metrics
            .get("histograms")
            .and_then(|h| h.get("pool.job_run_ns"))
            .is_some(),
        "per-job latency histogram drained into the artifact"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_injected_failure_becomes_a_failed_cell_and_partial_artifact() {
    let dir = temp_dir("fig1-fail");
    let out = Command::new(env!("CARGO_BIN_EXE_fig1"))
        .arg("tiny")
        .env("VISIM_FAIL_BENCH", "blend")
        .current_dir(&dir)
        .output()
        .expect("fig1 runs");
    assert!(!out.status.success());

    let doc = load_doc(&dir, "fig1");
    let cells = doc.get("cells").and_then(Json::elements).expect("cells");
    let failed: Vec<&Json> = cells
        .iter()
        .filter(|c| c.get("status").and_then(Json::as_str) == Some(STATUS_FAILED))
        .collect();
    assert_eq!(failed.len(), 1, "exactly the injected benchmark failed");
    assert_eq!(
        failed[0].get("benchmark").and_then(Json::as_str),
        Some("blend")
    );
    assert_eq!(
        failed[0].get("error_kind").and_then(Json::as_str),
        Some("Workload"),
        "SimError variant recorded"
    );
    assert!(
        failed[0]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("VISIM_FAIL_BENCH"),
        "full error message recorded"
    );
    // The other eleven benchmarks still produced their six bars each.
    assert_eq!(cells.len() - failed.len(), 66);

    // The standalone partial artifact wraps the same failed cell.
    let partial = std::fs::read_to_string(dir.join("results/partial/fig1.blend.json"))
        .expect("partial JSON artifact written");
    let partial = Json::parse(&partial).expect("partial artifact parses");
    assert_eq!(
        partial.get("schema").and_then(Json::as_str),
        Some(RESULTS_SCHEMA)
    );
    assert_eq!(
        partial
            .get("cell")
            .and_then(|c| c.get("status"))
            .and_then(Json::as_str),
        Some(STATUS_FAILED)
    );

    std::fs::remove_dir_all(&dir).ok();
}
