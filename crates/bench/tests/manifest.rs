//! Manifest-engine determinism: every figure binary is now a thin
//! invocation of `visim::experiment::run_manifest` over its embedded
//! manifest, so (a) each binary must render byte-identically whether
//! one worker or eight executed the grid, and (b) `--manifest F`
//! pointing at a copy of the embedded manifest must reproduce the
//! embedded run exactly.
//!
//! (`fig1` has the same worker-count check, plus fault-injection
//! coverage, in `tests/parallel.rs`.)

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use visim::manifest::Manifest;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-manifest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_bin(exe: &str, dir: &Path, jobs: &str, extra: &[&str]) -> Output {
    Command::new(exe)
        .arg("tiny")
        .args(extra)
        .env("VISIM_JOBS", jobs)
        .current_dir(dir)
        .output()
        .expect("figure binary runs")
}

fn check_jobs_equality(name: &str, exe: &str) {
    let dir = scratch_dir(name);
    let serial = run_bin(exe, &dir, "1", &[]);
    let parallel = run_bin(exe, &dir, "8", &[]);
    assert!(
        serial.status.success(),
        "{name} serial run: {}",
        String::from_utf8_lossy(&serial.stderr)
    );
    assert!(
        parallel.status.success(),
        "{name} parallel run: {}",
        String::from_utf8_lossy(&parallel.stderr)
    );
    assert_eq!(
        serial.stdout, parallel.stdout,
        "{name}: VISIM_JOBS=1 and VISIM_JOBS=8 must render identically"
    );
    assert!(!serial.stdout.is_empty(), "{name} rendered something");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig2_is_byte_identical_across_worker_counts() {
    check_jobs_equality("fig2", env!("CARGO_BIN_EXE_fig2"));
}

#[test]
fn fig3_is_byte_identical_across_worker_counts() {
    check_jobs_equality("fig3", env!("CARGO_BIN_EXE_fig3"));
}

#[test]
fn sweep_l1_is_byte_identical_across_worker_counts() {
    check_jobs_equality("sweep_l1", env!("CARGO_BIN_EXE_sweep_l1"));
}

#[test]
fn sweep_l2_is_byte_identical_across_worker_counts() {
    check_jobs_equality("sweep_l2", env!("CARGO_BIN_EXE_sweep_l2"));
}

#[test]
fn tables_is_byte_identical_across_worker_counts() {
    check_jobs_equality("tables", env!("CARGO_BIN_EXE_tables"));
}

#[test]
fn ablation_is_byte_identical_across_worker_counts() {
    check_jobs_equality("ablation", env!("CARGO_BIN_EXE_ablation"));
}

#[test]
fn kernels14_is_byte_identical_across_worker_counts() {
    check_jobs_equality("kernels14", env!("CARGO_BIN_EXE_kernels14"));
}

#[test]
fn manifest_flag_override_reproduces_the_embedded_run() {
    let dir = scratch_dir("override");
    // A byte-for-byte copy of the embedded manifest, loaded through the
    // --manifest file path, must change nothing about the output.
    let copy = dir.join("fig2-copy.json");
    std::fs::write(
        &copy,
        Manifest::builtin_text("fig2").expect("embedded fig2 manifest"),
    )
    .unwrap();
    let embedded = run_bin(env!("CARGO_BIN_EXE_fig2"), &dir, "2", &[]);
    let overridden = run_bin(
        env!("CARGO_BIN_EXE_fig2"),
        &dir,
        "2",
        &["--manifest", copy.to_str().unwrap()],
    );
    assert!(embedded.status.success() && overridden.status.success());
    assert_eq!(
        embedded.stdout, overridden.stdout,
        "--manifest with a copy of the embedded manifest is a no-op"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_flag_rejects_missing_and_malformed_files() {
    let dir = scratch_dir("badfile");
    let missing = run_bin(
        env!("CARGO_BIN_EXE_fig2"),
        &dir,
        "1",
        &["--manifest", "no-such-file.json"],
    );
    assert_eq!(missing.status.code(), Some(2), "missing manifest exits 2");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\":\"wrong\"}").unwrap();
    let malformed = run_bin(
        env!("CARGO_BIN_EXE_fig2"),
        &dir,
        "1",
        &["--manifest", bad.to_str().unwrap()],
    );
    assert_eq!(malformed.status.code(), Some(2), "bad manifest exits 2");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_custom_manifest_file_reshapes_the_grid() {
    let dir = scratch_dir("custom");
    // A two-benchmark fig2 subset: the engine must honor the file's
    // grid, not the embedded one.
    let custom = dir.join("fig2-small.json");
    std::fs::write(
        &custom,
        r#"{
  "schema": "visim-manifest-v1",
  "name": "fig2-small",
  "about": "two-benchmark fig2 subset",
  "title": "Figure 2 subset",
  "grid": {
    "kind": "fig2",
    "benchmarks": ["addition", "conv"],
    "mispredict_highlights": ["conv"]
  }
}"#,
    )
    .unwrap();
    let out = run_bin(
        env!("CARGO_BIN_EXE_fig2"),
        &dir,
        "2",
        &["--manifest", custom.to_str().unwrap()],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("addition") && stdout.contains("conv"),
        "{stdout}"
    );
    assert!(
        !stdout.contains("mpeg-enc"),
        "subset grid excludes the other benchmarks: {stdout}"
    );
    // The JSON artifact is named after the manifest, not the binary.
    assert!(
        dir.join("results/json/fig2-small.json").exists(),
        "artifact follows the manifest name"
    );
    std::fs::remove_dir_all(&dir).ok();
}
