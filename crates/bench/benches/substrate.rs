//! Microbenchmarks of the simulator substrate's hot paths (host
//! performance, not simulated time): the memory system, the pipeline
//! loop, packed-op semantics, and the DSP kernels. Runs on the
//! zero-dependency `visim_util::bench` wall-clock runner
//! (`VISIM_BENCH_MS` adjusts the per-benchmark budget).

use media_kernels::{pointwise, SimImage, Variant};
use visim_cpu::{CpuConfig, Pipeline, SimSink};
use visim_isa::{vis, Inst, MemKind, Op, Reg};
use visim_mem::{MemConfig, MemSystem, Request};
use visim_trace::Program;
use visim_util::bench::{black_box, Runner};

fn bench_mem_system(r: &mut Runner) {
    r.bench_function("mem_stream_1k_lines", || {
        let mut m = MemSystem::new(MemConfig::default());
        let mut t = 0u64;
        for i in 0..1000u64 {
            if let Ok(rr) = m.access(Request::new(0x10000 + i * 64, 8, MemKind::Load), t) {
                t = t.max(rr.done_at) + 1;
            }
        }
        black_box(m.stats().l1_primary_misses)
    });
}

fn bench_pipeline(r: &mut Runner) {
    r.bench_function("pipeline_10k_alu", || {
        let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        for i in 0..10_000u32 {
            p.push(Inst::compute(Op::IntAlu, 0x100, Reg(i + 1), [Reg::NONE; 3]));
        }
        black_box(p.finish().cycles())
    });
    r.bench_function("pipeline_load_stream", || {
        let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        for i in 0..2_000u32 {
            p.push(Inst::memory(
                Op::Load,
                0x200,
                Reg(i + 1),
                [Reg::NONE; 3],
                visim_isa::MemRef {
                    addr: 0x10000 + i as u64 * 32,
                    size: 8,
                    kind: MemKind::Load,
                },
            ));
        }
        black_box(p.finish().cycles())
    });
}

fn bench_vis_ops(r: &mut Runner) {
    let a = vis::pack16([100, -200, 300, -400]);
    let bb = vis::pack16([7, -9, 11, -13]);
    r.bench_function("vis_mul16_q8", || {
        black_box(vis::mul16_q8(black_box(a), black_box(bb)))
    });
    let x = vis::pack8([1, 2, 3, 4, 5, 6, 7, 8]);
    let y = vis::pack8([8, 7, 6, 5, 4, 3, 2, 1]);
    r.bench_function("vis_pdist", || {
        black_box(vis::pdist(black_box(x), black_box(y), 0))
    });
}

fn bench_dct(r: &mut Runner) {
    let mut block = [0i32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = ((i as i32 * 29) % 255) - 128;
    }
    r.bench_function("dsp_fdct8x8", || {
        black_box(media_dsp::fdct8x8(black_box(&block)))
    });
    let coef = media_dsp::fdct8x8(&block);
    r.bench_function("dsp_idct8x8", || {
        black_box(media_dsp::idct8x8(black_box(&coef)))
    });
}

fn bench_kernel_end_to_end(r: &mut Runner) {
    let img1 = media_image::synth::still(64, 40, 3, 1);
    let img2 = media_image::synth::still(64, 40, 3, 2);
    r.bench_function("sim_addition_vis_64x40", || {
        let mut pipe = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        {
            let mut p = Program::new(&mut pipe);
            let a = SimImage::from_image(&mut p, &img1);
            let bb = SimImage::from_image(&mut p, &img2);
            let d = SimImage::alloc(&mut p, 64, 40, 3);
            pointwise::addition(&mut p, &a, &bb, &d, Variant::VIS);
        }
        black_box(pipe.finish().cycles())
    });
}

fn main() {
    let mut r = Runner::new();
    bench_mem_system(&mut r);
    bench_pipeline(&mut r);
    bench_vis_ops(&mut r);
    bench_dct(&mut r);
    bench_kernel_end_to_end(&mut r);
}
