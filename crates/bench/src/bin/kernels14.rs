//! Appendix: the full 14-kernel VSDK sweep. The paper studies all 14
//! VSDK kernels but reports six for space (§2.1.1); this binary prints
//! scalar-vs-VIS instruction counts and 4-way-OOO timings for the whole
//! family, including the VIS-inapplicable scatter/gather kernels.

use media_image::synth;
use media_kernels::{blend, conv, pointwise, reduce, simimg::SimImage, thresh, KernelId, Variant};
use visim::artifact;
use visim::report;
use visim_bench::{parse_size_args, Report};
use visim_cpu::{CountingSink, CpuConfig, Pipeline, SimSink, Summary};
use visim_mem::MemConfig;
use visim_obs::Json;
use visim_trace::Program;

fn drive<S: SimSink>(p: &mut Program<S>, k: KernelId, w: usize, h: usize, v: Variant) {
    let img = synth::still(w, h, 3, 1);
    let img2 = synth::still(w, h, 3, 2);
    let al = synth::alpha(w, h, 3, 3);
    let img1b = synth::still(w, h, 1, 4);
    let img1b2 = synth::still(w, h, 1, 5);
    let al1b = synth::alpha(w, h, 1, 6);
    match k {
        KernelId::Addition => {
            let a = SimImage::from_image(p, &img);
            let b = SimImage::from_image(p, &img2);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::addition(p, &a, &b, &d, v);
        }
        KernelId::Blend => {
            let a = SimImage::from_image(p, &img);
            let b = SimImage::from_image(p, &img2);
            let m = SimImage::from_image(p, &al);
            let d = SimImage::alloc(p, w, h, 3);
            blend::blend(p, &a, &b, &m, &d, v);
        }
        KernelId::Blend1 => {
            let a = SimImage::from_image(p, &img1b);
            let b = SimImage::from_image(p, &img1b2);
            let m = SimImage::from_image(p, &al1b);
            let d = SimImage::alloc(p, w, h, 1);
            blend::blend(p, &a, &b, &m, &d, v);
        }
        KernelId::Conv => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            conv::conv(p, &a, &d, &conv::SHARPEN_STRONG, v);
        }
        KernelId::ConvSep => {
            let a = SimImage::from_image(p, &img);
            let t = SimImage::alloc(p, w, h, 3);
            let d = SimImage::alloc(p, w, h, 3);
            conv::convsep(p, &a, &t, &d, v);
        }
        KernelId::Copy => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::copy(p, &a, &d, v);
        }
        KernelId::Dotprod => {
            let n = w * h;
            let a = reduce::alloc_i16_array(p, n, 1);
            let b = reduce::alloc_i16_array(p, n, 2);
            let _ = reduce::dotprod(p, a, b, n, v);
        }
        KernelId::Invert => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::invert(p, &a, &d, v);
        }
        KernelId::Lookup => {
            let a = SimImage::from_image(p, &img1b);
            let d = SimImage::alloc(p, w, h, 1);
            let mut table = [0u8; 256];
            for (i, t) in table.iter_mut().enumerate() {
                *t = (i as u8).wrapping_mul(31);
            }
            pointwise::lookup(p, &a, &d, &table, v);
        }
        KernelId::Histogram => {
            let a = SimImage::from_image(p, &img1b);
            let _ = pointwise::histogram(p, &a, v);
        }
        KernelId::Sad => {
            let a = SimImage::from_image(p, &img1b);
            let b = SimImage::from_image(p, &img1b2);
            let _ = reduce::sad(p, &a, &b, v);
        }
        KernelId::Scaling => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::scaling(p, &a, &d, 307, -12, v);
        }
        KernelId::Thresh => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            thresh::thresh(p, &a, &d, &thresh::ThreshParams::example(), v);
        }
        KernelId::Thresh1 => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            thresh::thresh1(p, &a, &d, &[100, 120, 140, 0], &[250, 1, 128, 0], v);
        }
    }
}

fn timed(k: KernelId, w: usize, h: usize, v: Variant) -> Summary {
    let mut pipe = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
    {
        let mut p = Program::new(&mut pipe);
        drive(&mut p, k, w, h, v);
    }
    pipe.finish()
}

/// Cell configuration for this binary's runs.
fn config(timed: bool, variant: &str) -> Json {
    Json::obj(vec![
        ("figure", Json::from("kernels14")),
        ("timed", Json::from(timed)),
        ("variant", Json::from(variant)),
    ])
}

fn main() {
    let (size_label, size) = parse_size_args(
        "kernels14",
        "appendix: the full 14-kernel VSDK sweep, scalar vs. VIS",
    );
    let mut out = Report::new("kernels14", size_label);
    out.section("all 14 VSDK kernels: VIS vs scalar (4-way ooo)");
    // One job per kernel (each job is two counted and two timed runs),
    // fanned out over the experiment worker pool; the row order is the
    // input order, so the table is identical for any worker count.
    // Each run goes through the store-aware custom-cell runners, so
    // this appendix binary gets the same crash-safe resume, retry, and
    // fault-injection coverage as the registry-driven figures.
    let results = visim::experiment::run_parallel(
        KernelId::all()
            .iter()
            .map(|&k| {
                let size = &size;
                move || -> Result<_, visim_util::SimError> {
                    let (w, h) = (size.image_w, size.image_h);
                    let counted_run = |v: Variant, vname: &str| {
                        visim::experiment::try_custom_counted(
                            &format!("k14.{}.{vname}", k.name()),
                            size,
                            || {
                                let mut sink = CountingSink::new();
                                {
                                    let mut p = Program::new(&mut sink);
                                    drive(&mut p, k, w, h, v);
                                }
                                Ok(sink.finish())
                            },
                        )
                    };
                    let base = counted_run(Variant::SCALAR, "base")?;
                    let vis = counted_run(Variant::VIS, "vis")?;
                    let cpu = CpuConfig::ooo_4way();
                    let mem = MemConfig::default();
                    let timed_run = |v: Variant, vname: &str| {
                        visim::experiment::try_custom_timed(
                            &format!("k14.{}.{vname}", k.name()),
                            &cpu,
                            &mem,
                            size,
                            || Ok(timed(k, w, h, v)),
                        )
                    };
                    let ts = timed_run(Variant::SCALAR, "base")?;
                    let tv = timed_run(Variant::VIS, "vis")?;
                    Ok((base, vis, ts, tv))
                }
            })
            .collect(),
    );
    let mut rows = Vec::new();
    for (&k, result) in KernelId::all().iter().zip(&results) {
        let (base, vis, ts, tv) = match result {
            Ok(cell) => cell,
            Err(e) => {
                out.fail(
                    k.name(),
                    e,
                    artifact::failed_cell(k.name(), config(true, "any"), e),
                );
                continue;
            }
        };
        out.cell(artifact::counted_cell(
            k.name(),
            config(false, "base"),
            base,
        ));
        out.cell(artifact::counted_cell(k.name(), config(false, "vis"), vis));
        out.cell(artifact::timed_cell(k.name(), config(true, "base"), ts));
        out.cell(artifact::timed_cell(k.name(), config(true, "vis"), tv));
        rows.push(vec![
            k.name().to_string(),
            if KernelId::reported().contains(&k) {
                "reported".into()
            } else {
                String::new()
            },
            format!("{:.1}", 100.0 * vis.retired as f64 / base.retired as f64),
            format!("{:.2}x", ts.cycles() as f64 / tv.cycles() as f64),
            format!(
                "{:.0}%",
                100.0 * tv.cpu.breakdown().memory() / tv.cycles() as f64
            ),
        ]);
    }
    out.push(&report::table(
        &[
            "kernel",
            "in paper figs",
            "VIS insts %",
            "VIS speedup",
            "mem% (VIS)",
        ],
        &rows,
    ));
    out.line(
        "\nlookup and histogram are the VIS-inapplicable scatter/gather cases \
         (§3.2.3);\ncopy is bandwidth-bound in both variants.",
    );
    out.finish();
}
