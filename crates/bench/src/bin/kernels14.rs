//! Appendix: the full 14-kernel VSDK sweep. The paper studies all 14
//! VSDK kernels but reports six for space (§2.1.1); this binary prints
//! scalar-vs-VIS instruction counts and 4-way-OOO timings for the whole
//! family, including the VIS-inapplicable scatter/gather kernels.
//!
//! The kernel list lives in `results/manifests/kernels14.json`
//! (embedded at compile time, `--manifest` overrides); the per-kernel
//! driver is `visim::kernels14`. Each kernel is one worker-pool job of
//! two counted and two timed runs, all through the store-aware
//! custom-cell runners, so this appendix binary gets the same
//! crash-safe resume, retry, and fault-injection coverage as the
//! registry-driven figures.

fn main() {
    visim_bench::render::manifest_main("kernels14");
}
