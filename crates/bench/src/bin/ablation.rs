//! Design-choice ablations beyond the paper's figures (DESIGN.md E12/
//! E13): issue-width and window scaling, MSHR capacity, and the
//! mispredict-penalty sensitivity, plus MSHR-occupancy histograms.
//!
//! Every (benchmark × configuration) cell is independent, so each
//! section fans its runs out over the experiment worker pool
//! (`VISIM_JOBS` workers) and prints from this single thread; the
//! output is byte-identical for any worker count.

use media_kernels::Variant;
use visim::artifact;
use visim::bench::{Bench, WorkloadSize};
use visim::config::Arch;
use visim::experiment::{run_parallel, run_timed_cfg};
use visim::report;
use visim_bench::{parse_size_args, Report};
use visim_cpu::{CpuConfig, Summary};
use visim_mem::MemConfig;
use visim_obs::Json;

/// One simulation cell: a benchmark under an explicit machine config.
#[derive(Clone)]
struct Spec {
    bench: Bench,
    cpu: CpuConfig,
    mem: MemConfig,
    variant: Variant,
}

impl Spec {
    fn vis(bench: Bench, cpu: CpuConfig, mem: MemConfig) -> Self {
        Spec {
            bench,
            cpu,
            mem,
            variant: Variant::VIS,
        }
    }
}

/// Run every cell on the worker pool, results in input order. Cells
/// route through the shared experiment runner, so an ablation sweep
/// records each (benchmark, variant) stream once and replays it for
/// every machine configuration on the sweep.
fn run_all(specs: Vec<Spec>, size: &WorkloadSize) -> Vec<Summary> {
    run_parallel(
        specs
            .into_iter()
            .map(|spec| move || run_timed_cfg(spec.bench, spec.cpu, spec.mem, size, spec.variant))
            .collect(),
    )
}

/// Cell configuration for one ablation run: which sweep (`section`) and
/// which point on it (`value`, with `"base"` for the baseline run).
fn ablation_config(key: &str, value: &str) -> Json {
    Json::obj(vec![
        ("figure", Json::from("ablation")),
        ("section", Json::from(key)),
        ("value", Json::from(value)),
    ])
}

/// A base-plus-variants section: per benchmark, one baseline run and
/// one run per sweep value, rendered as ratios against the base. Every
/// run also becomes one JSON result cell under the section key.
#[allow(clippy::too_many_arguments)]
fn ratio_section(
    out: &mut Report,
    key: &str,
    title: &str,
    headers: &[&str],
    benches: &[Bench],
    size: &WorkloadSize,
    specs: Vec<Spec>,
    per_bench: usize,
) {
    out.section(title);
    let sums = run_all(specs, size);
    let mut rows = Vec::new();
    for (bench, chunk) in benches.iter().zip(sums.chunks_exact(per_bench)) {
        let values = std::iter::once("base").chain(headers[1..].iter().copied());
        for (s, value) in chunk.iter().zip(values) {
            out.cell(artifact::timed_cell(
                bench.name(),
                ablation_config(key, value),
                s,
            ));
        }
        let base = chunk[0].cycles() as f64;
        let mut row = vec![bench.name().to_string()];
        for s in &chunk[1..] {
            row.push(format!("{:.2}x", s.cycles() as f64 / base));
        }
        rows.push(row);
    }
    out.push(&report::table(headers, &rows));
}

fn main() {
    let (size_label, size) = parse_size_args(
        "ablation",
        "design-choice ablations: issue width, window, MSHRs, mispredict penalty",
    );
    let mut out = Report::new("ablation", size_label);
    let benches = [Bench::Addition, Bench::Conv, Bench::MpegEnc];

    let mut specs = Vec::new();
    for bench in benches {
        specs.push(Spec::vis(
            bench,
            CpuConfig::ooo_4way(),
            MemConfig::default(),
        ));
        for width in [1u32, 2, 4, 8] {
            let mut cfg = CpuConfig::ooo_4way();
            cfg.issue_width = width;
            specs.push(Spec::vis(bench, cfg, MemConfig::default()));
        }
    }
    ratio_section(
        &mut out,
        "issue-width",
        "ablation: issue width (out-of-order, VIS)",
        &["benchmark", "w=1", "w=2", "w=4", "w=8"],
        &benches,
        &size,
        specs,
        5,
    );

    let mut specs = Vec::new();
    for bench in benches {
        specs.push(Spec::vis(
            bench,
            CpuConfig::ooo_4way(),
            MemConfig::default(),
        ));
        for window in [16u32, 32, 64, 128] {
            let mut cfg = CpuConfig::ooo_4way();
            cfg.window = window;
            specs.push(Spec::vis(bench, cfg, MemConfig::default()));
        }
    }
    ratio_section(
        &mut out,
        "window",
        "ablation: instruction window size",
        &["benchmark", "win=16", "win=32", "win=64", "win=128"],
        &benches,
        &size,
        specs,
        5,
    );

    let mut specs = Vec::new();
    for bench in benches {
        specs.push(Spec::vis(
            bench,
            CpuConfig::ooo_4way(),
            MemConfig::default(),
        ));
        for mshrs in [2u32, 4, 12, 24] {
            let mut mem = MemConfig::default();
            mem.l1.mshrs = mshrs;
            mem.l2.mshrs = mshrs;
            specs.push(Spec::vis(bench, CpuConfig::ooo_4way(), mem));
        }
    }
    ratio_section(
        &mut out,
        "mshr-count",
        "ablation: L1 MSHR count (write backup, paper §3.1)",
        &["benchmark", "mshr=2", "mshr=4", "mshr=12", "mshr=24"],
        &benches,
        &size,
        specs,
        5,
    );

    let mut specs = Vec::new();
    for bench in benches {
        specs.push(Spec::vis(
            bench,
            CpuConfig::ooo_4way(),
            MemConfig::default(),
        ));
        for pen in [0u64, 5, 10, 20] {
            let mut cfg = CpuConfig::ooo_4way();
            cfg.mispredict_penalty = pen;
            specs.push(Spec::vis(bench, cfg, MemConfig::default()));
        }
    }
    ratio_section(
        &mut out,
        "mispredict-penalty",
        "ablation: branch mispredict penalty",
        &["benchmark", "pen=0", "pen=5", "pen=10", "pen=20"],
        &benches,
        &size,
        specs,
        5,
    );

    let mut specs = Vec::new();
    for bench in benches {
        specs.push(Spec::vis(
            bench,
            CpuConfig::ooo_4way(),
            MemConfig::default(),
        ));
        let mut cfg = CpuConfig::ooo_4way();
        cfg.blocking_loads = true;
        specs.push(Spec::vis(bench, cfg, MemConfig::default()));
    }
    ratio_section(
        &mut out,
        "blocking-loads",
        "ablation: blocking vs non-blocking loads (related work, paper §5)",
        &["benchmark", "blocking-loads slowdown"],
        &benches,
        &size,
        specs,
        2,
    );

    out.section("MSHR occupancy (paper: >5 in flight under prefetching)");
    let hist_benches = [Bench::Addition, Bench::Scaling];
    let variants = [("VIS", Variant::VIS), ("VIS+PF", Variant::VIS_PF)];
    let mut specs = Vec::new();
    for bench in hist_benches {
        for (_, variant) in variants {
            specs.push(Spec {
                bench,
                cpu: Arch::Ooo4.cpu(),
                mem: MemConfig::default(),
                variant,
            });
        }
    }
    let mut sums = run_all(specs, &size).into_iter();
    for bench in hist_benches {
        for (label, _) in variants {
            let s = sums.next().expect("one summary per histogram cell");
            out.cell(artifact::timed_cell(
                bench.name(),
                ablation_config("mshr-occupancy", label),
                &s,
            ));
            let hist = &s.mshr_histogram;
            let total: u64 = hist.iter().sum();
            let frac_ge5: u64 = hist.iter().skip(5).sum();
            out.line(format!(
                "{:<10} {:<7} cycles with >=5 outstanding misses: {:>5.1}%",
                bench.name(),
                label,
                100.0 * frac_ge5 as f64 / total.max(1) as f64
            ));
        }
    }
    out.finish();
}
