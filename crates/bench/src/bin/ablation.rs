//! Design-choice ablations beyond the paper's figures (DESIGN.md E12/
//! E13): issue-width and window scaling, MSHR capacity, and the
//! mispredict-penalty sensitivity, plus MSHR-occupancy histograms.
//!
//! The section definitions — sweep parameters, values, table headers —
//! live in `results/manifests/ablation.json` (embedded at compile
//! time, `--manifest` overrides). Every (benchmark × configuration)
//! cell is independent, so each section fans its runs out over the
//! experiment worker pool (`VISIM_JOBS` workers) and prints from a
//! single thread; the output is byte-identical for any worker count.

fn main() {
    visim_bench::render::manifest_main("ablation");
}
