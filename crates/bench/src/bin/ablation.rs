//! Design-choice ablations beyond the paper's figures (DESIGN.md E12/
//! E13): issue-width and window scaling, MSHR capacity, and the
//! mispredict-penalty sensitivity, plus MSHR-occupancy histograms.

use media_kernels::Variant;
use visim::bench::Bench;
use visim::config::Arch;
use visim::report;
use visim_bench::{section, size_from_args};
use visim_cpu::{CpuConfig, Pipeline};
use visim_mem::MemConfig;

fn run_with(
    bench: Bench,
    cpu: CpuConfig,
    mem: MemConfig,
    size: &visim::bench::WorkloadSize,
) -> visim_cpu::Summary {
    let mut pipe = Pipeline::new(cpu, mem);
    bench.run(&mut pipe, size, Variant::VIS);
    pipe.finish()
}

fn main() {
    let size = size_from_args();
    let benches = [Bench::Addition, Bench::Conv, Bench::MpegEnc];

    section("ablation: issue width (out-of-order, VIS)");
    let mut rows = Vec::new();
    for bench in benches {
        let base = run_with(bench, CpuConfig::ooo_4way(), MemConfig::default(), &size);
        let mut row = vec![bench.name().to_string()];
        for width in [1u32, 2, 4, 8] {
            let mut cfg = CpuConfig::ooo_4way();
            cfg.issue_width = width;
            let s = run_with(bench, cfg, MemConfig::default(), &size);
            row.push(format!("{:.2}x", s.cycles() as f64 / base.cycles() as f64));
        }
        rows.push(row);
    }
    print!(
        "{}",
        report::table(&["benchmark", "w=1", "w=2", "w=4", "w=8"], &rows)
    );

    section("ablation: instruction window size");
    let mut rows = Vec::new();
    for bench in benches {
        let base = run_with(bench, CpuConfig::ooo_4way(), MemConfig::default(), &size);
        let mut row = vec![bench.name().to_string()];
        for window in [16u32, 32, 64, 128] {
            let mut cfg = CpuConfig::ooo_4way();
            cfg.window = window;
            let s = run_with(bench, cfg, MemConfig::default(), &size);
            row.push(format!("{:.2}x", s.cycles() as f64 / base.cycles() as f64));
        }
        rows.push(row);
    }
    print!(
        "{}",
        report::table(
            &["benchmark", "win=16", "win=32", "win=64", "win=128"],
            &rows
        )
    );

    section("ablation: L1 MSHR count (write backup, paper §3.1)");
    let mut rows = Vec::new();
    for bench in benches {
        let base = run_with(bench, CpuConfig::ooo_4way(), MemConfig::default(), &size);
        let mut row = vec![bench.name().to_string()];
        for mshrs in [2u32, 4, 12, 24] {
            let mut mem = MemConfig::default();
            mem.l1.mshrs = mshrs;
            mem.l2.mshrs = mshrs;
            let s = run_with(bench, CpuConfig::ooo_4way(), mem, &size);
            row.push(format!("{:.2}x", s.cycles() as f64 / base.cycles() as f64));
        }
        rows.push(row);
    }
    print!(
        "{}",
        report::table(
            &["benchmark", "mshr=2", "mshr=4", "mshr=12", "mshr=24"],
            &rows
        )
    );

    section("ablation: branch mispredict penalty");
    let mut rows = Vec::new();
    for bench in benches {
        let base = run_with(bench, CpuConfig::ooo_4way(), MemConfig::default(), &size);
        let mut row = vec![bench.name().to_string()];
        for pen in [0u64, 5, 10, 20] {
            let mut cfg = CpuConfig::ooo_4way();
            cfg.mispredict_penalty = pen;
            let s = run_with(bench, cfg, MemConfig::default(), &size);
            row.push(format!("{:.2}x", s.cycles() as f64 / base.cycles() as f64));
        }
        rows.push(row);
    }
    print!(
        "{}",
        report::table(&["benchmark", "pen=0", "pen=5", "pen=10", "pen=20"], &rows)
    );

    section("ablation: blocking vs non-blocking loads (related work, paper §5)");
    let mut rows = Vec::new();
    for bench in benches {
        let base = run_with(bench, CpuConfig::ooo_4way(), MemConfig::default(), &size);
        let mut cfg = CpuConfig::ooo_4way();
        cfg.blocking_loads = true;
        let s = run_with(bench, cfg, MemConfig::default(), &size);
        rows.push(vec![
            bench.name().to_string(),
            format!("{:.2}x", s.cycles() as f64 / base.cycles() as f64),
        ]);
    }
    print!(
        "{}",
        report::table(&["benchmark", "blocking-loads slowdown"], &rows)
    );

    section("MSHR occupancy (paper: >5 in flight under prefetching)");
    for bench in [Bench::Addition, Bench::Scaling] {
        for (label, variant) in [("VIS", Variant::VIS), ("VIS+PF", Variant::VIS_PF)] {
            let s = {
                let mut pipe = Pipeline::new(Arch::Ooo4.cpu(), MemConfig::default());
                bench.run(&mut pipe, &size, variant);
                pipe.finish()
            };
            let hist = &s.mshr_histogram;
            let total: u64 = hist.iter().sum();
            let frac_ge5: u64 = hist.iter().skip(5).sum();
            println!(
                "{:<10} {:<7} cycles with >=5 outstanding misses: {:>5.1}%",
                bench.name(),
                label,
                100.0 * frac_ge5 as f64 / total.max(1) as f64
            );
        }
    }
}
