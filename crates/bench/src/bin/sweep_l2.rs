//! Regenerates the **§4.1 L2 cache sweep** (in-text result): vary the
//! L2 size with the L1 fixed at 64 KB. The paper: no impact on the six
//! kernels and the non-progressive JPEG codecs; ≤1.2X for the
//! progressive codecs and MPEG once the display-sized working set fits.
//!
//! A benchmark whose sweep fails becomes an error row; the rest still
//! produce curves. The 12 × 5 (benchmark × L2 size) cells run on the
//! experiment worker pool (`VISIM_JOBS` workers); output order is
//! independent of the worker count.

use visim::artifact;
use visim::experiment::try_l2_sweep_all;
use visim::report;
use visim_bench::{parse_size_args, Report};

fn main() {
    let (size_label, size) = parse_size_args(
        "sweep_l2",
        "regenerate the S4.1 L2 cache-size sweep (L1 fixed)",
    );
    // The study geometry is 1/16 the paper's pixel count, so the sweep
    // covers proportionally smaller caches plus the paper's 2M corner.
    let sizes: [u64; 5] = [128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20];
    let mut out = Report::new("sweep_l2", size_label);
    out.line("Section 4.1: impact of L2 cache size (VIS, 4-way ooo)");
    for (bench, outcome) in try_l2_sweep_all(&size, &sizes) {
        out.section(bench.name());
        let points = match outcome {
            Ok(points) => points,
            Err(e) => {
                let cell =
                    artifact::failed_cell(bench.name(), artifact::figure_config("sweep_l2"), &e);
                out.fail(bench.name(), &e, cell);
                continue;
            }
        };
        for pt in &points {
            out.cell(artifact::sweep_cell(bench, "l2", pt));
        }
        out.push(&report::table(
            &report::sweep_headers(),
            &report::sweep_rows(&points),
        ));
        let base = points[0].summary.cycles() as f64;
        let best = points
            .iter()
            .map(|pt| pt.summary.cycles())
            .min()
            .unwrap_or(1) as f64;
        out.line(format!("max benefit from larger L2: {:.2}x", base / best));
    }
    out.finish();
}
