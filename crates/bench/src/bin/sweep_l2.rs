//! Regenerates the **§4.1 L2 cache sweep** (in-text result): vary the
//! L2 size with the L1 fixed at 64 KB. The paper: no impact on the six
//! kernels and the non-progressive JPEG codecs; ≤1.2X for the
//! progressive codecs and MPEG once the display-sized working set fits.
//!
//! The study geometry is 1/16 the paper's pixel count, so the sweep
//! covers proportionally smaller caches plus the paper's 2M corner.
//!
//! A benchmark whose sweep fails becomes an error row; the rest still
//! produce curves. The sweep grid lives in
//! `results/manifests/sweep_l2.json` (embedded at compile time,
//! `--manifest` overrides): the 12 × 5 (benchmark × L2 size) cells run
//! on the experiment worker pool (`VISIM_JOBS` workers); output order
//! is independent of the worker count.

fn main() {
    visim_bench::render::manifest_main("sweep_l2");
}
