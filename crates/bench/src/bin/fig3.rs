//! Regenerates **Figure 3**: the effect of software-inserted
//! prefetching (VIS vs. VIS+PF) on the nine benchmarks with
//! non-trivial memory stall time.
//!
//! A benchmark whose simulation fails becomes an error row; the rest
//! still produce bars.

use visim::artifact;
use visim::experiment::try_fig3;
use visim::report;
use visim_bench::{parse_size_args, Report};

fn main() {
    let (size_label, size) = parse_size_args(
        "fig3",
        "regenerate Figure 3: software prefetching (VIS vs. VIS+PF)",
    );
    let mut out = Report::new("fig3", size_label);
    out.line("Figure 3: effect of software-inserted prefetching (4-way ooo, VIS)");
    out.section("normalized execution time");
    let outcomes = try_fig3(&size);
    let rows: Vec<_> = outcomes
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().cloned())
        .collect();
    out.push(&report::table(
        &report::fig3_headers(),
        &report::fig3_rows(&rows),
    ));
    for (bench, r) in &outcomes {
        match r {
            Ok(row) => {
                for cell in artifact::fig3_cells(row) {
                    out.cell(cell);
                }
            }
            Err(e) => {
                let cell = artifact::failed_cell(bench.name(), artifact::figure_config("fig3"), e);
                out.fail(bench.name(), e, cell);
            }
        }
    }

    // The paper's claim: with prefetching, every benchmark reverts to
    // being compute-bound.
    out.section("compute- vs memory-bound after prefetching");
    for r in &rows {
        let bd = r.pf.cpu.breakdown();
        let memfrac = bd.memory() / r.pf.cycles() as f64;
        out.line(format!(
            "{:<10} memory fraction {:>5.1}%  -> {}",
            r.bench.name(),
            100.0 * memfrac,
            if memfrac < 0.5 {
                "compute-bound"
            } else {
                "memory-bound"
            }
        ));
    }
    out.finish();
}
