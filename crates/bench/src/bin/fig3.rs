//! Regenerates **Figure 3**: the effect of software-inserted
//! prefetching (VIS vs. VIS+PF) on the nine benchmarks with
//! non-trivial memory stall time.

use visim::experiment::fig3;
use visim::report;
use visim_bench::{section, size_from_args};

fn main() {
    let size = size_from_args();
    println!("Figure 3: effect of software-inserted prefetching (4-way ooo, VIS)");
    section("normalized execution time");
    let rows = fig3(&size);
    print!("{}", report::table(&report::fig3_headers(), &report::fig3_rows(&rows)));

    // The paper's claim: with prefetching, every benchmark reverts to
    // being compute-bound.
    section("compute- vs memory-bound after prefetching");
    for r in &rows {
        let bd = r.pf.cpu.breakdown();
        let memfrac = bd.memory() / r.pf.cycles() as f64;
        println!(
            "{:<10} memory fraction {:>5.1}%  -> {}",
            r.bench.name(),
            100.0 * memfrac,
            if memfrac < 0.5 { "compute-bound" } else { "memory-bound" }
        );
    }
}
