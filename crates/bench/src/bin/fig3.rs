//! Regenerates **Figure 3**: the effect of software-inserted
//! prefetching (VIS vs. VIS+PF) on the nine benchmarks with
//! non-trivial memory stall time.
//!
//! A benchmark whose simulation fails becomes an error row; the rest
//! still produce bars. The experiment grid lives in
//! `results/manifests/fig3.json` (embedded at compile time,
//! `--manifest` overrides).

fn main() {
    visim_bench::render::manifest_main("fig3");
}
