//! Regenerates **Figure 1**: normalized execution time of all 12
//! benchmarks on {1-way in-order, 4-way in-order, 4-way out-of-order} ×
//! {without VIS, with VIS}, broken into Busy / FU stall / L1 hit /
//! L1 miss components.
//!
//! A benchmark whose simulation fails becomes an error row; the other
//! eleven still produce bars and the process exits nonzero with the
//! partial output preserved under `results/partial/`.
//!
//! The 72 (benchmark × configuration) cells run on the experiment
//! worker pool (`VISIM_JOBS` workers) and are printed in figure order
//! from this single thread, so the output is byte-identical for any
//! worker count.

use visim::artifact;
use visim::experiment::try_fig1_all;
use visim::report;
use visim_bench::{parse_size_args, Report};

fn main() {
    let (size_label, size) = parse_size_args(
        "fig1",
        "regenerate Figure 1: normalized execution time on 3 architectures x {base, VIS}",
    );
    let mut out = Report::new("fig1", size_label);
    out.line("Figure 1: performance of image and video benchmarks");
    out.line(format!(
        "(inputs: {}x{} images, {} dotprod elements, {}x{} video)",
        size.image_w, size.image_h, size.dotprod_n, size.video_w, size.video_h
    ));
    for (bench, outcome) in try_fig1_all(&size) {
        out.section(bench.name());
        let bars = match outcome {
            Ok(bars) => bars,
            Err(e) => {
                let cell = artifact::failed_cell(bench.name(), artifact::figure_config("fig1"), &e);
                out.fail(bench.name(), &e, cell);
                continue;
            }
        };
        for bar in &bars {
            out.cell(artifact::fig1_cell(bench, bar));
        }
        let rows = report::fig1_rows(&bars);
        out.push(&report::table(&report::fig1_headers(), &rows));
        // The headline ratios the paper quotes.
        let t = |i: usize| bars[i].summary.cycles() as f64;
        out.line(format!(
            "ILP speedup (1-way -> ooo): {:.2}x   VIS speedup (ooo): {:.2}x   combined: {:.2}x",
            t(0) / t(2),
            t(2) / t(5),
            t(0) / t(5),
        ));
    }
    out.finish();
}
