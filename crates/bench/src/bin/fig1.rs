//! Regenerates **Figure 1**: normalized execution time of all 12
//! benchmarks on {1-way in-order, 4-way in-order, 4-way out-of-order} ×
//! {without VIS, with VIS}, broken into Busy / FU stall / L1 hit /
//! L1 miss components.

use visim::bench::Bench;
use visim::experiment::fig1_bench;
use visim::report;
use visim_bench::{section, size_from_args};

fn main() {
    let size = size_from_args();
    println!("Figure 1: performance of image and video benchmarks");
    println!(
        "(inputs: {}x{} images, {} dotprod elements, {}x{} video)",
        size.image_w, size.image_h, size.dotprod_n, size.video_w, size.video_h
    );
    for bench in Bench::all() {
        section(bench.name());
        let bars = fig1_bench(bench, &size);
        let rows = report::fig1_rows(&bars);
        print!("{}", report::table(&report::fig1_headers(), &rows));
        // The headline ratios the paper quotes.
        let t = |i: usize| bars[i].summary.cycles() as f64;
        println!(
            "ILP speedup (1-way -> ooo): {:.2}x   VIS speedup (ooo): {:.2}x   combined: {:.2}x",
            t(0) / t(2),
            t(2) / t(5),
            t(0) / t(5),
        );
    }
}
