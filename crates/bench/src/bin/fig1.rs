//! Regenerates **Figure 1**: normalized execution time of all 12
//! benchmarks on {1-way in-order, 4-way in-order, 4-way out-of-order} ×
//! {without VIS, with VIS}, broken into Busy / FU stall / L1 hit /
//! L1 miss components.
//!
//! A benchmark whose simulation fails becomes an error row; the other
//! eleven still produce bars and the process exits nonzero with the
//! partial output preserved under `results/partial/`.
//!
//! The experiment grid lives in `results/manifests/fig1.json`
//! (embedded at compile time, `--manifest` overrides): the 72
//! (benchmark × configuration) cells run on the experiment worker pool
//! (`VISIM_JOBS` workers) and are printed in figure order from a single
//! thread, so the output is byte-identical for any worker count.

fn main() {
    visim_bench::render::manifest_main("fig1");
}
