//! Paper-fidelity validation gate over the `visim-results-v2` JSON
//! artifacts.
//!
//! Loads `fig1.json`, `fig2.json`, and `fig3.json` from a results
//! directory (default `results/json/`, override with the first
//! argument) and asserts the paper's headline quantitative claims as
//! tolerance bands:
//!
//! * **ILP** (§3.1, Figure 1): 1-way in-order → 4-way out-of-order
//!   speeds every benchmark up; the paper quotes 2.3–4.2X. The
//!   reproduction's per-benchmark spread is wider (the codecs sit low,
//!   the kernels high), so the gate checks the geometric mean against
//!   the paper band with a documented ±~25% tolerance and a per-bench
//!   floor.
//! * **VIS** (§3.2, Figure 1): media extensions add 1.1–4.2X on top of
//!   the out-of-order core and never slow a benchmark down.
//! * **Prefetch** (§4.2, Figure 3): software prefetching adds 1.4–2.5X
//!   on the memory-bound benchmarks and never loses performance.
//! * **Branch work** (§3.2.2, Figure 2): VIS removes data-dependent
//!   branches, so the misprediction rate drops for conv, thresh, and
//!   mpeg-enc.
//! * **Rearrangement overhead** (§3.2.3): ~41% of VIS instructions are
//!   subword rearrangement / alignment overhead on average.
//! * **Trace attribution** (`pipetrace.json`): the cycle-level trace's
//!   per-cycle stall attribution must equal the pipeline's aggregate
//!   Figure 1 breakdown **exactly** — same integer unit counts and
//!   `total_units == cycles × width` — for every benchmark × six main
//!   configurations. Unlike the tolerance bands above this is an
//!   invariant, not physics: the two attributions are computed by
//!   independent code paths from the same charging rule, so any
//!   difference is a tracing bug.
//!
//! The bands hold at both `tiny` and `study` workload sizes (measured:
//! ILP geomean 2.86/2.88, VIS 1.89/2.01, prefetch 1.58/1.96, overhead
//! 0.406/0.405 at study/tiny), so the gate runs on tiny artifacts in
//! `scripts/verify.sh` and on study artifacts in `scripts/bench.sh`.
//!
//! A `"status": "failed"` cell is reported as **CRASH** (the simulation
//! died) and an out-of-band aggregate as **DRIFT** (the simulation ran
//! but the physics moved) — different failure classes for a consumer
//! scanning the output. Exit status: 0 all checks pass, 1 any crash or
//! drift, 2 artifacts missing or unreadable.
//!
//! # Sampled-vs-exact drift mode
//!
//! `validate --drift <exact-dir> <sampled-dir>` compares the figure
//! artifacts of an exact run against those of a `--sample` run of the
//! same workload size. Per matched cell:
//!
//! * a sampled estimate (`cell.sampling.mode` = 1) must land within the
//!   cell's own declared 95% CI (`cell.sampling.ci_centipct`), widened
//!   to a conservative floor of ±[`DRIFT_FLOOR`] relative CPI error —
//!   SMARTS CIs are computed from few windows at small sizes and can
//!   underestimate;
//! * an exact-fallback cell (`mode` = 2) must match the exact run's
//!   cycle count bit for bit;
//! * counted cells (Figure 2, no timing model) must carry identical
//!   functional payloads — sampling never touches functional state.
//!
//! The sampled artifacts are then run through the same paper-fidelity
//! bands as an exact run, so sampled Figures 1–3 must stay inside the
//! paper's claims, not merely near the exact reproduction.

use std::collections::BTreeMap;
use std::process::ExitCode;

use visim_obs::schema::RESULTS_SCHEMA;
use visim_obs::Json;

/// Accumulates check outcomes and renders the one-line-per-check log.
struct Gate {
    checks: u32,
    failures: u32,
}

impl Gate {
    fn new() -> Self {
        Gate {
            checks: 0,
            failures: 0,
        }
    }

    /// Assert `value` lies inside `[lo, hi]`.
    fn band(&mut self, label: &str, value: f64, lo: f64, hi: f64) {
        self.checks += 1;
        if value >= lo && value <= hi {
            println!("  ok    {label}: {value:.3} in [{lo:.3}, {hi:.3}]");
        } else {
            self.failures += 1;
            println!("  DRIFT {label}: {value:.3} outside [{lo:.3}, {hi:.3}]");
        }
    }

    /// Assert a named condition already evaluated by the caller.
    fn claim(&mut self, label: &str, ok: bool, detail: &str) {
        self.checks += 1;
        if ok {
            println!("  ok    {label}: {detail}");
        } else {
            self.failures += 1;
            println!("  DRIFT {label}: {detail}");
        }
    }

    /// Record crashed cells (status "failed") from one document.
    fn crashes(&mut self, doc_name: &str, cells: &[&Json]) {
        self.checks += 1;
        if cells.is_empty() {
            println!("  ok    {doc_name}: no crashed cells");
            return;
        }
        self.failures += 1;
        for c in cells {
            let bench = c.get("benchmark").and_then(Json::as_str).unwrap_or("?");
            let kind = c.get("error_kind").and_then(Json::as_str).unwrap_or("?");
            println!("  CRASH {doc_name}: {bench} failed ({kind})");
        }
    }
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Load one results document and verify its schema tag.
fn load(dir: &str, name: &str) -> Result<Json, String> {
    let path = format!("{dir}/{name}.json");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == RESULTS_SCHEMA => Ok(doc),
        other => Err(format!(
            "{path}: schema {other:?}, expected {RESULTS_SCHEMA:?}"
        )),
    }
}

/// Split a document's cells into ok and failed.
fn cells(doc: &Json) -> (Vec<&Json>, Vec<&Json>) {
    let all = doc
        .get("cells")
        .and_then(Json::elements)
        .map(|c| c.iter().collect::<Vec<_>>())
        .unwrap_or_default();
    all.into_iter()
        .partition(|c| c.get("status").and_then(Json::as_str) == Some("ok"))
}

fn config_str<'a>(cell: &'a Json, key: &str) -> Option<&'a str> {
    cell.get("config")
        .and_then(|c| c.get(key))
        .and_then(Json::as_str)
}

fn check_fig1(gate: &mut Gate, doc: &Json) {
    let (ok, failed) = cells(doc);
    gate.crashes("fig1", &failed);
    // cycles by (benchmark, arch label, vis flag)
    let mut cyc: BTreeMap<(String, String, bool), f64> = BTreeMap::new();
    for c in &ok {
        let (Some(b), Some(a), Some(v)) = (
            c.get("benchmark").and_then(Json::as_str),
            config_str(c, "arch"),
            c.get("config")
                .and_then(|c| c.get("vis"))
                .map(|j| j == &Json::Bool(true)),
        ) else {
            continue;
        };
        if let Some(cycles) = c.get("cycles").and_then(Json::as_f64) {
            cyc.insert((b.to_string(), a.to_string(), v), cycles);
        }
    }
    let benches: Vec<String> = {
        let mut b: Vec<String> = cyc.keys().map(|(b, _, _)| b.clone()).collect();
        b.dedup();
        b
    };
    let mut ilp = Vec::new();
    let mut vis = Vec::new();
    for b in &benches {
        let get = |arch: &str, v: bool| cyc.get(&(b.clone(), arch.to_string(), v)).copied();
        if let (Some(one), Some(ooo)) = (get("1-way", false), get("4-way ooo", false)) {
            ilp.push(one / ooo);
        }
        if let (Some(base), Some(with)) = (get("4-way ooo", false), get("4-way ooo", true)) {
            vis.push(base / with);
        }
    }
    // Paper §3.1: ILP alone buys 2.3-4.2X. Tolerance: the reproduction's
    // per-benchmark spread is wider (1.9-6.8X measured), so gate the
    // geometric mean at paper band ± ~25% and floor each benchmark.
    gate.claim(
        "fig1.ilp.per-bench-floor",
        !ilp.is_empty() && ilp.iter().all(|&s| s >= 1.5),
        &format!(
            "min ILP speedup {:.2} >= 1.5 over {} benchmarks",
            ilp.iter().cloned().fold(f64::INFINITY, f64::min),
            ilp.len()
        ),
    );
    gate.band("fig1.ilp.geomean", geomean(&ilp), 2.0, 4.5);
    // Paper §3.2: VIS adds 1.1-4.2X and never hurts. Tolerance: geomean
    // in [1.3, 3.0] (measured 1.89 study / 2.01 tiny); per-benchmark
    // floor at parity.
    gate.claim(
        "fig1.vis.never-slower",
        !vis.is_empty() && vis.iter().all(|&s| s >= 1.0),
        &format!(
            "min VIS speedup {:.2} >= 1.0 over {} benchmarks",
            vis.iter().cloned().fold(f64::INFINITY, f64::min),
            vis.len()
        ),
    );
    gate.band("fig1.vis.geomean", geomean(&vis), 1.3, 3.0);
}

fn check_fig2(gate: &mut Gate, doc: &Json) {
    let (ok, failed) = cells(doc);
    gate.crashes("fig2", &failed);
    // cpu stats by (benchmark, variant)
    let mut stats: BTreeMap<(String, String), &Json> = BTreeMap::new();
    for c in &ok {
        if let (Some(b), Some(v), Some(cpu)) = (
            c.get("benchmark").and_then(Json::as_str),
            config_str(c, "variant"),
            c.get("cpu"),
        ) {
            stats.insert((b.to_string(), v.to_string()), cpu);
        }
    }
    // Paper §3.2.3: ~41% of VIS instructions are rearrangement /
    // alignment overhead on average. Tolerance: [0.30, 0.52] (measured
    // 0.406 study / 0.405 tiny).
    let overheads: Vec<f64> = stats
        .iter()
        .filter(|((_, v), _)| v == "vis")
        .filter_map(|(_, cpu)| {
            let vis_count = cpu.get("mix")?.get("vis").and_then(Json::as_f64)?;
            if vis_count > 0.0 {
                cpu.get("vis_overhead_fraction").and_then(Json::as_f64)
            } else {
                None
            }
        })
        .collect();
    let avg = overheads.iter().sum::<f64>() / overheads.len().max(1) as f64;
    gate.band("fig2.vis-overhead.mean", avg, 0.30, 0.52);
    // Paper §3.2.2: VIS removes the data-dependent branches of
    // saturation/thresholding, dropping the misprediction rate for
    // conv, thresh, and mpeg-enc. Tolerance: VIS rate <= 0.85x base
    // (measured ratios 0.16-0.68 across sizes).
    for bench in ["conv", "thresh", "mpeg-enc"] {
        let rate = |variant: &str| {
            stats
                .get(&(bench.to_string(), variant.to_string()))
                .and_then(|cpu| cpu.get("mispredict_rate"))
                .and_then(Json::as_f64)
        };
        match (rate("base"), rate("vis")) {
            (Some(base), Some(vis)) => gate.claim(
                &format!("fig2.mispredict-drop.{bench}"),
                vis <= 0.85 * base,
                &format!("{:.1}% -> {:.1}% with VIS", 100.0 * base, 100.0 * vis),
            ),
            _ => gate.claim(
                &format!("fig2.mispredict-drop.{bench}"),
                false,
                "cells missing",
            ),
        }
    }
}

fn check_fig3(gate: &mut Gate, doc: &Json) {
    let (ok, failed) = cells(doc);
    gate.crashes("fig3", &failed);
    let mut cyc: BTreeMap<(String, String), f64> = BTreeMap::new();
    for c in &ok {
        if let (Some(b), Some(v), Some(cycles)) = (
            c.get("benchmark").and_then(Json::as_str),
            config_str(c, "variant"),
            c.get("cycles").and_then(Json::as_f64),
        ) {
            cyc.insert((b.to_string(), v.to_string()), cycles);
        }
    }
    let mut speedups = Vec::new();
    let benches: Vec<String> = {
        let mut b: Vec<String> = cyc.keys().map(|(b, _)| b.clone()).collect();
        b.dedup();
        b
    };
    for b in &benches {
        if let (Some(vis), Some(pf)) = (
            cyc.get(&(b.clone(), "vis".to_string())),
            cyc.get(&(b.clone(), "vis+pf".to_string())),
        ) {
            speedups.push(vis / pf);
        }
    }
    // Paper §4.2: prefetching buys 1.4-2.5X on the memory-bound set and
    // never loses. Tolerance: geomean in [1.2, 2.8] (measured 1.58
    // study / 1.96 tiny); per-benchmark floor just under parity for
    // the already-compute-bound members of the set.
    gate.claim(
        "fig3.prefetch.never-slower",
        !speedups.is_empty() && speedups.iter().all(|&s| s >= 0.95),
        &format!(
            "min prefetch speedup {:.2} >= 0.95 over {} benchmarks",
            speedups.iter().cloned().fold(f64::INFINITY, f64::min),
            speedups.len()
        ),
    );
    gate.band("fig3.prefetch.geomean", geomean(&speedups), 1.2, 2.8);
}

/// `pipetrace.json`: exact equality between the trace-derived and the
/// aggregate (Figure 1) stall attribution, per cell. Every unit member
/// must match as a `u64`, and the totals must account for every issue
/// slot of every cycle (`total_units == cycles * width`).
fn check_pipetrace(gate: &mut Gate, doc: &Json) {
    let (ok, failed) = cells(doc);
    gate.crashes("pipetrace", &failed);
    gate.claim(
        "pipetrace.coverage",
        ok.len() + failed.len() == 72,
        &format!(
            "{} cells ({} ok), expected 12 benchmarks x 6 configs = 72",
            ok.len() + failed.len(),
            ok.len()
        ),
    );
    const UNIT_MEMBERS: [&str; 7] = [
        "width",
        "cycles",
        "busy_units",
        "fu_stall_units",
        "l1_hit_units",
        "l1_miss_units",
        "total_units",
    ];
    let mut checked = 0usize;
    let mut bad: Vec<String> = Vec::new();
    for c in &ok {
        let bench = c.get("benchmark").and_then(Json::as_str).unwrap_or("?");
        let arch = config_str(c, "arch").unwrap_or("?");
        let vis = c
            .get("config")
            .and_then(|cfg| cfg.get("vis"))
            .map(|j| j == &Json::Bool(true))
            .unwrap_or(false);
        let label = format!("{bench}/{arch}{}", if vis { "+vis" } else { "" });
        let (Some(aggregate), Some(trace), Some(cycles)) = (
            c.get("aggregate"),
            c.get("trace"),
            c.get("cycles").and_then(Json::as_u64),
        ) else {
            bad.push(format!("{label} (members missing)"));
            continue;
        };
        checked += 1;
        let field = |obj: &Json, k: &str| obj.get(k).and_then(Json::as_u64);
        let mut mismatch = UNIT_MEMBERS
            .iter()
            .any(|k| field(trace, k).is_none() || field(trace, k) != field(aggregate, k));
        let width = field(trace, "width").unwrap_or(0);
        if field(trace, "cycles") != Some(cycles)
            || field(trace, "total_units") != Some(cycles * width)
        {
            mismatch = true;
        }
        if mismatch {
            bad.push(label);
        }
    }
    let detail = if bad.is_empty() {
        format!("exact (all unit members) for {checked}/{checked} cells")
    } else {
        format!(
            "{} of {} cells disagree: {}",
            bad.len(),
            checked + bad.len(),
            bad.join(", ")
        )
    };
    gate.claim(
        "pipetrace.trace-vs-aggregate",
        checked > 0 && bad.is_empty(),
        &detail,
    );
}

/// Conservative floor on the allowed relative CPI error of a sampled
/// cell, applied when the cell's own declared CI is tighter. SMARTS
/// confidence intervals come from per-window CPI variance; with the
/// handful of windows a tiny-size stream yields they can understate
/// the true error, so the gate never demands better than ±5%.
const DRIFT_FLOOR: f64 = 0.05;

/// `cell.sampling.*` counter values from a cell's metrics.
fn sampling_counter(cell: &Json, name: &str) -> Option<u64> {
    cell.get("metrics")?
        .get("counters")?
        .get(name)
        .and_then(Json::as_u64)
}

/// Identity of a cell for exact↔sampled pairing: benchmark name plus
/// the full configuration object (compact-serialized).
fn cell_key(cell: &Json) -> String {
    let bench = cell.get("benchmark").and_then(Json::as_str).unwrap_or("?");
    let config = cell.get("config").map(Json::to_compact).unwrap_or_default();
    format!("{bench} {config}")
}

/// Short human label for drift diagnostics: benchmark + the
/// distinguishing config members.
fn cell_label(cell: &Json) -> String {
    let bench = cell.get("benchmark").and_then(Json::as_str).unwrap_or("?");
    let arch = config_str(cell, "arch").unwrap_or("");
    let variant = config_str(cell, "variant").unwrap_or("");
    let vis = cell
        .get("config")
        .and_then(|c| c.get("vis"))
        .map(|j| j == &Json::Bool(true))
        .unwrap_or(false);
    let mut label = bench.to_string();
    if !arch.is_empty() {
        label.push_str(&format!("/{arch}"));
    }
    if !variant.is_empty() {
        label.push_str(&format!("/{variant}"));
    }
    if vis {
        label.push_str("+vis");
    }
    label
}

/// Compare one figure document between an exact and a sampled run:
/// sampled estimates within their declared CI (floored), fallback and
/// counted cells identical.
fn check_drift(gate: &mut Gate, name: &str, exact: &Json, sampled: &Json) {
    let (exact_ok, exact_failed) = cells(exact);
    let (sampled_ok, sampled_failed) = cells(sampled);
    gate.crashes(&format!("{name}(exact)"), &exact_failed);
    gate.crashes(&format!("{name}(sampled)"), &sampled_failed);
    let exact_by_key: BTreeMap<String, &Json> =
        exact_ok.iter().map(|c| (cell_key(c), *c)).collect();
    let mut estimated = 0usize;
    let mut exact_matched = 0usize;
    let mut worst = 0.0f64;
    let mut bad: Vec<String> = Vec::new();
    for s in &sampled_ok {
        let label = cell_label(s);
        let Some(e) = exact_by_key.get(&cell_key(s)) else {
            bad.push(format!("{label}: no exact twin"));
            continue;
        };
        let (exact_cycles, sampled_cycles) = (
            e.get("cycles").and_then(Json::as_u64),
            s.get("cycles").and_then(Json::as_u64),
        );
        let (Some(exact_cycles), Some(sampled_cycles)) = (exact_cycles, sampled_cycles) else {
            // Counted cell (no timing model): sampling must not have
            // touched it — the functional payload is identical.
            if e.get("cpu") == s.get("cpu") {
                exact_matched += 1;
            } else {
                bad.push(format!("{label}: counted payload differs under sampling"));
            }
            continue;
        };
        match sampling_counter(s, "cell.sampling.mode") {
            Some(1) => {
                estimated += 1;
                let ci =
                    sampling_counter(s, "cell.sampling.ci_centipct").unwrap_or(0) as f64 / 10_000.0;
                let allowed = ci.max(DRIFT_FLOOR);
                let err = (sampled_cycles as f64 - exact_cycles as f64).abs()
                    / exact_cycles.max(1) as f64;
                worst = worst.max(err);
                if err > allowed {
                    bad.push(format!(
                        "{label}: CPI error {:.2}% > allowed {:.2}% (ci ±{:.2}%)",
                        100.0 * err,
                        100.0 * allowed,
                        100.0 * ci
                    ));
                }
            }
            Some(2) => {
                // Exact fallback: same pipeline, same stream — the
                // cycle count must be bit-identical.
                if exact_cycles == sampled_cycles {
                    exact_matched += 1;
                } else {
                    bad.push(format!(
                        "{label}: exact-fallback cell differs ({sampled_cycles} vs {exact_cycles})"
                    ));
                }
            }
            _ => bad.push(format!("{label}: timed cell missing cell.sampling.mode")),
        }
    }
    let detail = if bad.is_empty() {
        format!(
            "{estimated} estimates within CI (worst {:.2}%), {exact_matched} exact-equal cells",
            100.0 * worst
        )
    } else {
        format!(
            "{} of {} cells out: {}",
            bad.len(),
            sampled_ok.len(),
            bad.join("; ")
        )
    };
    gate.claim(
        &format!("{name}.sampled-within-ci"),
        !sampled_ok.is_empty() && bad.is_empty(),
        &detail,
    );
}

/// `--drift` entry point: per-cell exact-vs-sampled comparison for
/// Figures 1–3, then the standard paper-fidelity bands over the
/// sampled artifacts.
fn run_drift(exact_dir: &str, sampled_dir: &str) -> ExitCode {
    let mut gate = Gate::new();
    println!("sampled-vs-exact drift validation: exact={exact_dir}/ sampled={sampled_dir}/");
    let docs: Vec<(&str, Check)> = vec![
        ("fig1", check_fig1),
        ("fig2", check_fig2),
        ("fig3", check_fig3),
    ];
    for (name, fidelity) in docs {
        match (load(exact_dir, name), load(sampled_dir, name)) {
            (Ok(exact), Ok(sampled)) => {
                println!("{name}.json:");
                check_drift(&mut gate, name, &exact, &sampled);
                // The sampled artifact must also satisfy the paper's
                // bands in its own right.
                fidelity(&mut gate, &sampled);
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("validate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if gate.failures == 0 {
        println!("drift: OK ({} checks)", gate.checks);
        ExitCode::SUCCESS
    } else {
        println!("drift: {} of {} checks FAILED", gate.failures, gate.checks);
        ExitCode::FAILURE
    }
}

type Check = fn(&mut Gate, &Json);

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("--help") | Some("-h") => {
            println!(
                "validate: paper-fidelity gate over the visim-results-v2 JSON artifacts\n\
                 \n\
                 Usage: validate [results-dir] [--help]\n\
                 \x20      validate --drift <exact-dir> <sampled-dir>\n\
                 \n\
                 Loads fig1.json, fig2.json, fig3.json, and pipetrace.json from the\n\
                 given directory (default results/json) and checks the paper's headline\n\
                 claims as tolerance bands, plus the exact trace-vs-aggregate stall\n\
                 attribution invariant. Exit: 0 ok, 1 drift/crash, 2 missing artifacts.\n\
                 \n\
                 --drift compares an exact run's Figures 1-3 against a --sample run of\n\
                 the same workload size: every sampled estimate must land within its\n\
                 own declared 95% CI (floored at +/-5% relative CPI error), fallback\n\
                 and counted cells must match exactly, and the sampled artifacts must\n\
                 still pass the paper-fidelity bands."
            );
            return ExitCode::SUCCESS;
        }
        Some("--drift") => {
            let (exact_dir, sampled_dir) = match (std::env::args().nth(2), std::env::args().nth(3))
            {
                (Some(e), Some(s)) => (e, s),
                _ => {
                    eprintln!("validate: --drift needs <exact-dir> <sampled-dir>");
                    return ExitCode::from(2);
                }
            };
            return run_drift(&exact_dir, &sampled_dir);
        }
        _ => {}
    }
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/json".to_string());
    let mut gate = Gate::new();
    println!("paper-fidelity validation over {dir}/");
    let docs: Vec<(&str, Check)> = vec![
        ("fig1", check_fig1),
        ("fig2", check_fig2),
        ("fig3", check_fig3),
        ("pipetrace", check_pipetrace),
    ];
    for (name, check) in docs {
        match load(&dir, name) {
            Ok(doc) => {
                let size = doc.get("size").and_then(Json::as_str).unwrap_or("?");
                println!("{name}.json (size={size}):");
                check(&mut gate, &doc);
            }
            Err(e) => {
                eprintln!("validate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if gate.failures == 0 {
        println!("fidelity: OK ({} checks)", gate.checks);
        ExitCode::SUCCESS
    } else {
        println!(
            "fidelity: {} of {} checks FAILED",
            gate.failures, gate.checks
        );
        ExitCode::FAILURE
    }
}
