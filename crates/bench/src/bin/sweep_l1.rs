//! Regenerates the **§4.1 L1 cache sweep** (in-text result): vary the
//! L1 size from 1 KB to 64 KB with the L2 fixed at 128 KB. The paper:
//! small first-level working sets — 4-16 KB gets within 3% of 64 KB;
//! the sensitive benchmarks are the table-driven codecs.
//!
//! A benchmark whose sweep fails becomes an error row; the rest still
//! produce curves. The 12 × 5 (benchmark × L1 size) cells run on the
//! experiment worker pool (`VISIM_JOBS` workers); output order is
//! independent of the worker count.

use visim::artifact;
use visim::experiment::try_l1_sweep_all;
use visim::report;
use visim_bench::{parse_size_args, Report};

fn main() {
    let (size_label, size) = parse_size_args(
        "sweep_l1",
        "regenerate the S4.1 L1 cache-size sweep (L2 fixed)",
    );
    let sizes: [u64; 5] = [1 << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10];
    let mut out = Report::new("sweep_l1", size_label);
    out.line("Section 4.1: impact of L1 cache size (VIS, 4-way ooo)");
    for (bench, outcome) in try_l1_sweep_all(&size, &sizes) {
        out.section(bench.name());
        let points = match outcome {
            Ok(points) => points,
            Err(e) => {
                let cell =
                    artifact::failed_cell(bench.name(), artifact::figure_config("sweep_l1"), &e);
                out.fail(bench.name(), &e, cell);
                continue;
            }
        };
        for pt in &points {
            out.cell(artifact::sweep_cell(bench, "l1", pt));
        }
        out.push(&report::table(
            &report::sweep_headers(),
            &report::sweep_rows(&points),
        ));
        let worst = points
            .iter()
            .map(|pt| pt.summary.cycles())
            .max()
            .unwrap_or(1) as f64;
        let best = points
            .iter()
            .map(|pt| pt.summary.cycles())
            .min()
            .unwrap_or(1) as f64;
        out.line(format!("1K-vs-64K spread: {:.2}x", worst / best));
    }
    out.finish();
}
