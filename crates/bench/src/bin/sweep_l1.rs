//! Regenerates the **§4.1 L1 cache sweep** (in-text result): vary the
//! L1 size from 1 KB to 64 KB with the L2 fixed at 128 KB. The paper:
//! small first-level working sets — 4-16 KB gets within 3% of 64 KB;
//! the sensitive benchmarks are the table-driven codecs.
//!
//! A benchmark whose sweep fails becomes an error row; the rest still
//! produce curves. The sweep grid lives in
//! `results/manifests/sweep_l1.json` (embedded at compile time,
//! `--manifest` overrides): the 12 × 5 (benchmark × L1 size) cells run
//! on the experiment worker pool (`VISIM_JOBS` workers); output order
//! is independent of the worker count.

fn main() {
    visim_bench::render::manifest_main("sweep_l1");
}
