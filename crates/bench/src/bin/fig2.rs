//! Regenerates **Figure 2**: normalized dynamic (retired) instruction
//! counts, base vs. VIS, split into FU / Branch / Memory / VIS
//! categories — plus the in-text §3.2.2 statistics (branch
//! misprediction improvements, VIS rearrangement overhead).
//!
//! A benchmark whose run fails becomes an error row; the in-text
//! statistics are computed over the benchmarks that succeeded.

use visim::artifact;
use visim::experiment::try_fig2;
use visim::report;
use visim_bench::{parse_size_args, Report};

fn main() {
    let (size_label, size) = parse_size_args(
        "fig2",
        "regenerate Figure 2: dynamic instruction counts, base vs. VIS",
    );
    let mut out = Report::new("fig2", size_label);
    out.line("Figure 2: impact of VIS on dynamic (retired) instruction count");
    out.section("instruction mix (percent of the base variant's count)");
    let outcomes = try_fig2(&size);
    let rows: Vec<_> = outcomes
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().cloned())
        .collect();
    out.push(&report::table(
        &report::fig2_headers(),
        &report::fig2_rows(&rows),
    ));
    for (bench, r) in &outcomes {
        match r {
            Ok(row) => {
                for cell in artifact::fig2_cells(row) {
                    out.cell(cell);
                }
            }
            Err(e) => {
                let cell = artifact::failed_cell(bench.name(), artifact::figure_config("fig2"), e);
                out.fail(bench.name(), e, cell);
            }
        }
    }

    out.section("in-text statistics (paper §3.2.2 / §3.2.3)");
    let mut overhead_sum = 0.0;
    let mut overhead_n = 0;
    for r in &rows {
        if r.vis.mix[3] > 0 {
            overhead_sum += r.vis.vis_overhead_fraction();
            overhead_n += 1;
        }
    }
    out.line(format!(
        "average VIS rearrangement/alignment overhead: {:.0}% of VIS instructions (paper: ~41%)",
        100.0 * overhead_sum / overhead_n.max(1) as f64
    ));
    for name in ["conv", "thresh", "mpeg-enc"] {
        if let Some(r) = rows.iter().find(|r| r.bench.name() == name) {
            out.line(format!(
                "{name}: branch misprediction {:.1}% -> {:.1}% with VIS",
                100.0 * r.base.mispredict_rate(),
                100.0 * r.vis.mispredict_rate()
            ));
        }
    }
    out.finish();
}
