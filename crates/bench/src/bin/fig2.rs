//! Regenerates **Figure 2**: normalized dynamic (retired) instruction
//! counts, base vs. VIS, split into FU / Branch / Memory / VIS
//! categories — plus the in-text §3.2.2 statistics (branch
//! misprediction improvements, VIS rearrangement overhead).
//!
//! A benchmark whose run fails becomes an error row; the in-text
//! statistics are computed over the benchmarks that succeeded. The
//! experiment grid lives in `results/manifests/fig2.json` (embedded at
//! compile time, `--manifest` overrides).

fn main() {
    visim_bench::render::manifest_main("fig2");
}
