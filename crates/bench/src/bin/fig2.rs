//! Regenerates **Figure 2**: normalized dynamic (retired) instruction
//! counts, base vs. VIS, split into FU / Branch / Memory / VIS
//! categories — plus the in-text §3.2.2 statistics (branch
//! misprediction improvements, VIS rearrangement overhead).

use visim::experiment::fig2;
use visim::report;
use visim_bench::{section, size_from_args};

fn main() {
    let size = size_from_args();
    println!("Figure 2: impact of VIS on dynamic (retired) instruction count");
    section("instruction mix (percent of the base variant's count)");
    let rows = fig2(&size);
    print!("{}", report::table(&report::fig2_headers(), &report::fig2_rows(&rows)));

    section("in-text statistics (paper §3.2.2 / §3.2.3)");
    let mut overhead_sum = 0.0;
    let mut overhead_n = 0;
    for r in &rows {
        if r.vis.mix[3] > 0 {
            overhead_sum += r.vis.vis_overhead_fraction();
            overhead_n += 1;
        }
    }
    println!(
        "average VIS rearrangement/alignment overhead: {:.0}% of VIS instructions (paper: ~41%)",
        100.0 * overhead_sum / overhead_n.max(1) as f64
    );
    for name in ["conv", "thresh", "mpeg-enc"] {
        if let Some(r) = rows.iter().find(|r| r.bench.name() == name) {
            println!(
                "{name}: branch misprediction {:.1}% -> {:.1}% with VIS",
                100.0 * r.base.mispredict_rate(),
                100.0 * r.vis.mispredict_rate()
            );
        }
    }
}
