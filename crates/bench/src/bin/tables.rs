//! Regenerates the paper's descriptive **Tables 1-4**: the benchmark
//! suite, the processor parameters, the memory-system parameters, and
//! the VIS instruction classification.

use visim::bench::Bench;
use visim::report;
use visim_bench::section;
use visim_cpu::CpuConfig;
use visim_isa::Op;
use visim_mem::MemConfig;

fn main() {
    section("Table 1: benchmark summary");
    let rows: Vec<Vec<String>> = Bench::all()
        .into_iter()
        .map(|b| vec![b.name().to_string(), b.description().to_string()])
        .collect();
    print!("{}", report::table(&["benchmark", "description"], &rows));

    section("Table 2: default processor parameters");
    let rows: Vec<Vec<String>> = CpuConfig::ooo_4way()
        .table2()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    print!("{}", report::table(&["parameter", "value"], &rows));

    section("Table 3: default memory system parameters");
    let rows: Vec<Vec<String>> = MemConfig::default()
        .table3()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    print!("{}", report::table(&["parameter", "value"], &rows));

    section("Table 4: classification of VIS instructions");
    let rows: Vec<Vec<String>> = Op::all()
        .iter()
        .filter_map(|op| {
            op.vis_class().map(|class| {
                vec![
                    format!("{op:?}"),
                    class.to_string(),
                    format!("{:?}", op.fu()),
                    if op.is_vis_overhead() {
                        "rearrangement overhead".into()
                    } else {
                        String::new()
                    },
                ]
            })
        })
        .collect();
    print!(
        "{}",
        report::table(&["operation", "class (Table 4)", "unit", "notes"], &rows)
    );
}
