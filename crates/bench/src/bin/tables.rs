//! Regenerates the paper's descriptive **Tables 1-4**: the benchmark
//! suite, the processor parameters, the memory-system parameters, and
//! the VIS instruction classification. The rendering itself lives in
//! `visim::report::tables_text` so the golden-snapshot test can pin it
//! against `results/tables.txt`.

fn main() {
    print!("{}", visim::report::tables_text());
}
