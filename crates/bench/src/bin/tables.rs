//! Regenerates the paper's descriptive **Tables 1-4**: the benchmark
//! suite, the processor parameters, the memory-system parameters, and
//! the VIS instruction classification. The rendering itself lives in
//! `visim::report::tables_text` so the golden-snapshot test can pin it
//! against `results/tables.txt`.
//!
//! The tables are static (no simulation), so the JSON artifact under
//! `results/json/tables.json` has no cells — it still records the git
//! revision and wall clock for provenance.

fn main() {
    visim_bench::render::manifest_main("tables");
}
