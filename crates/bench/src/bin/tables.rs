//! Regenerates the paper's descriptive **Tables 1-4**: the benchmark
//! suite, the processor parameters, the memory-system parameters, and
//! the VIS instruction classification. The rendering itself lives in
//! `visim::report::tables_text` so the golden-snapshot test can pin it
//! against `results/tables.txt`.
//!
//! The tables are static (no simulation), so the JSON artifact under
//! `results/json/tables.json` has no cells — it still records the git
//! revision and wall clock for provenance.

use visim_bench::{parse_size_args, Report};

fn main() {
    let (size_label, _) = parse_size_args(
        "tables",
        "regenerate Tables 1-4: benchmark suite and machine parameters (no simulation)",
    );
    let mut out = Report::new("tables", size_label);
    out.push(&visim::report::tables_text());
    out.finish();
}
