//! Cycle-level pipeline tracing: record per-instruction lifecycle
//! spans (fetch→dispatch→issue→complete→retire), microarchitectural
//! instant events (branch mispredicts, cache hits/misses, MSHR
//! allocate/drain, prefetch issues), and per-cycle stall-cause samples
//! for one benchmark × configuration, then export them as a Chrome
//! trace-event / Perfetto JSON file under `results/trace/`.
//!
//! Alongside the trace file the binary prints a stall-attribution
//! report: the trace-derived per-cycle attribution next to the
//! pipeline's aggregate Figure 1 breakdown. The two are computed by
//! independent code paths from the same per-cycle charging rule
//! (§2.3.4 of the paper), so they must agree **exactly** — in integer
//! units of `1/issue_width` cycles — and the binary exits nonzero when
//! they do not.
//!
//! `--attribution` switches to matrix mode: every benchmark × six main
//! configurations runs with an aggregates-only ring (capacity 0, no
//! event storage) on the experiment worker pool, and the per-cell
//! trace/aggregate attribution pairs land in
//! `results/json/pipetrace.json` for the `validate` gate's
//! cycle-for-cycle cross-check.

use media_kernels::Variant;
use visim::artifact;
use visim::bench::{Bench, WorkloadSize};
use visim::config::Arch;
use visim::experiment::{run_parallel, try_run_traced};
use visim_bench::{write_atomic, Report};
use visim_cpu::Summary;
use visim_obs::trace::{Trace, TraceRing};
use visim_obs::{schema, Json};
use visim_util::SimError;

/// The six main configurations of Figure 1, by CLI name.
const CONFIGS: [(&str, Arch, bool); 6] = [
    ("1way", Arch::InOrder1, false),
    ("4way", Arch::InOrder4, false),
    ("ooo", Arch::Ooo4, false),
    ("1way-vis", Arch::InOrder1, true),
    ("4way-vis", Arch::InOrder4, true),
    ("ooo-vis", Arch::Ooo4, true),
];

/// Event capacity of the trace ring in single-run mode. Oldest events
/// are evicted (and counted) past this; the attribution aggregates are
/// exact regardless.
const RING_CAP: usize = 1 << 18;

fn usage() -> String {
    let benches: Vec<&str> = Bench::all().iter().map(|b| b.name()).collect();
    let configs: Vec<&str> = CONFIGS.iter().map(|&(name, _, _)| name).collect();
    format!(
        "pipetrace: cycle-level pipeline tracing with Perfetto/Chrome trace export\n\
         \n\
         Usage: pipetrace <benchmark> <config> [tiny|study|paper] [--cycles A..B] [--out PATH]\n\
         \x20      pipetrace --attribution [tiny|study|paper]\n\
         \n\
         Modes:\n\
         \x20 <benchmark> <config>  trace one run; write a Chrome trace-event JSON file\n\
         \x20                       (default results/trace/<benchmark>.<config>.trace.json)\n\
         \x20                       and print the stall-attribution report\n\
         \x20 --attribution         run every benchmark x config (aggregates only; no event\n\
         \x20                       storage) and write results/json/pipetrace.json for the\n\
         \x20                       validate gate's trace-vs-Figure-1 cross-check\n\
         \n\
         Options:\n\
         \x20 --cycles A..B   keep only events in the half-open cycle window [A, B)\n\
         \x20                 (attribution aggregates always cover the whole run)\n\
         \x20 --out PATH      trace file destination (single-run mode)\n\
         \n\
         Sizes default to tiny (traces are per-cycle; study/paper files get large).\n\
         Benchmarks: {}\n\
         Configs:    {}",
        benches.join(" "),
        configs.join(" ")
    )
}

fn die_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("\n{}", usage());
    std::process::exit(2);
}

struct Cli {
    attribution: bool,
    bench: Option<Bench>,
    config: Option<(&'static str, Arch, bool)>,
    size_label: &'static str,
    size: WorkloadSize,
    cycles: Option<(u64, u64)>,
    out: Option<String>,
}

fn parse_bench(name: &str) -> Option<Bench> {
    Bench::all().into_iter().find(|b| b.name() == name)
}

fn parse_config(name: &str) -> Option<(&'static str, Arch, bool)> {
    CONFIGS.into_iter().find(|&(n, _, _)| n == name)
}

fn parse_cycles(spec: &str) -> Option<(u64, u64)> {
    let (a, b) = spec.split_once("..")?;
    let start: u64 = a.parse().ok()?;
    let end: u64 = b.parse().ok()?;
    (start < end).then_some((start, end))
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        attribution: false,
        bench: None,
        config: None,
        size_label: "tiny",
        size: WorkloadSize::tiny(),
        cycles: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            "--attribution" => cli.attribution = true,
            "--cycles" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| die_usage("--cycles needs a range argument"));
                cli.cycles = Some(parse_cycles(&spec).unwrap_or_else(|| {
                    die_usage(&format!(
                        "bad cycle window '{spec}', expected A..B with A < B"
                    ))
                }));
            }
            "--out" => {
                cli.out = Some(
                    args.next()
                        .unwrap_or_else(|| die_usage("--out needs a path argument")),
                );
            }
            "tiny" => (cli.size_label, cli.size) = ("tiny", WorkloadSize::tiny()),
            "study" => (cli.size_label, cli.size) = ("study", WorkloadSize::study()),
            "paper" => (cli.size_label, cli.size) = ("paper", WorkloadSize::paper()),
            other if cli.bench.is_none() && !cli.attribution => {
                cli.bench = Some(
                    parse_bench(other)
                        .unwrap_or_else(|| die_usage(&format!("unknown benchmark '{other}'"))),
                );
            }
            other if cli.config.is_none() && !cli.attribution => {
                cli.config = Some(parse_config(other).unwrap_or_else(|| {
                    die_usage(&format!("unknown config '{other}', expected one of 1way|4way|ooo|1way-vis|4way-vis|ooo-vis"))
                }));
            }
            other => die_usage(&format!("unexpected argument '{other}'")),
        }
    }
    cli
}

/// Format the side-by-side stall-attribution report and return whether
/// the two attributions agree exactly.
fn attribution_report(summary: &Summary, trace: &Trace) -> (String, bool) {
    let agg = summary.cpu.attribution();
    let tr = trace.attribution;
    let mut s = String::new();
    s.push_str(&format!(
        "{:<12} {:>14} {:>14}\n",
        "component", "aggregate", "trace"
    ));
    for (name, a, t) in [
        ("busy", agg.busy_units, tr.busy_units),
        ("fu_stall", agg.fu_stall_units, tr.fu_stall_units),
        ("l1_hit", agg.l1_hit_units, tr.l1_hit_units),
        ("l1_miss", agg.l1_miss_units, tr.l1_miss_units),
        ("total", agg.total_units(), tr.total_units()),
    ] {
        let mark = if a == t { "" } else { "   <-- MISMATCH" };
        s.push_str(&format!("{name:<12} {a:>14} {t:>14}{mark}\n"));
    }
    s.push_str(&format!(
        "cycles       {:>14}   (x width {} = {} units)\n",
        summary.cycles(),
        agg.width,
        summary.cycles() * agg.width,
    ));
    let ok = agg == tr && tr.total_units() == summary.cycles() * agg.width;
    (s, ok)
}

/// Validity check on the exported document: it must parse as a JSON
/// object with a non-empty `traceEvents` array whose `"B"`/`"E"` events
/// balance per thread id. This re-derives the invariant from the
/// serialized text (not from the in-memory `Trace`), so a broken
/// exporter cannot vouch for itself.
fn check_trace_doc(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::elements)
        .ok_or("missing traceEvents array")?;
    let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event lacks ph")?;
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("tid {tid}: E without matching B"));
                }
            }
            _ => {}
        }
    }
    if let Some((tid, d)) = depth.iter().find(|&(_, &d)| d != 0) {
        return Err(format!("tid {tid}: {d} unclosed B events"));
    }
    Ok(events.len())
}

/// Single-run mode: trace one benchmark × configuration, write the
/// Chrome trace file, and print the stall-attribution report.
fn run_single(cli: &Cli) -> ! {
    let bench = cli.bench.unwrap_or_else(|| die_usage("missing benchmark"));
    let (cfg_name, arch, vis) = cli.config.unwrap_or_else(|| die_usage("missing config"));
    let variant = if vis { Variant::VIS } else { Variant::SCALAR };
    let mut ring = TraceRing::new(RING_CAP);
    if let Some((start, end)) = cli.cycles {
        ring.set_window(start, end);
    }
    let (summary, trace) = match try_run_traced(bench, arch, None, &cli.size, variant, ring) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("pipetrace: {}: {e}", bench.name());
            std::process::exit(1);
        }
    };
    let chrome = trace.chrome_trace(vec![
        ("benchmark", Json::from(bench.name())),
        ("config", Json::from(cfg_name)),
        ("arch", Json::from(arch.label())),
        ("vis", Json::from(vis)),
        ("size", Json::from(cli.size_label)),
        ("git_rev", Json::from(schema::git_rev())),
    ]);
    let mut text = chrome.to_pretty();
    text.push('\n');
    let n_events = match check_trace_doc(&text) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("pipetrace: invalid trace export: {e}");
            std::process::exit(1);
        }
    };
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| format!("results/trace/{}.{}.trace.json", bench.name(), cfg_name));
    if let Err(e) = write_atomic(&out, text.as_bytes()) {
        eprintln!("pipetrace: could not write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "pipetrace: {} {} (size {}): {} events -> {}",
        bench.name(),
        cfg_name,
        cli.size_label,
        n_events,
        out
    );
    if trace.dropped > 0 {
        println!(
            "  ring full: {} oldest events evicted (aggregates below stay exact)",
            trace.dropped
        );
    }
    if let Some((start, end)) = cli.cycles {
        println!("  cycle window [{start}, {end}) applied to stored events");
    }
    println!("\nstall-attribution report (units of 1/{} cycle):", {
        summary.cpu.attribution().width
    });
    let (report, ok) = attribution_report(&summary, &trace);
    print!("{report}");
    if ok {
        println!("\ntrace attribution == Figure 1 aggregate, cycle-for-cycle: ok");
        std::process::exit(0);
    }
    eprintln!("\npipetrace: trace attribution DISAGREES with the Figure 1 aggregate");
    std::process::exit(1);
}

/// Matrix mode: every benchmark × six configurations at the given size,
/// aggregates-only rings, artifact under `results/json/pipetrace.json`.
fn run_attribution(cli: &Cli) -> ! {
    let size = &cli.size;
    let mut cells = Vec::new();
    for bench in Bench::all() {
        for (cfg_name, arch, vis) in CONFIGS {
            cells.push((bench, cfg_name, arch, vis));
        }
    }
    // Report first: its wall clock covers the simulations and the
    // progress heartbeat observes the pool below.
    let mut out = Report::new("pipetrace", cli.size_label);
    let results = run_parallel(
        cells
            .iter()
            .map(|&(bench, _, arch, vis)| {
                let variant = if vis { Variant::VIS } else { Variant::SCALAR };
                // Capacity 0: no event storage, exact aggregates only.
                move || try_run_traced(bench, arch, None, size, variant, TraceRing::new(0))
            })
            .collect(),
    );
    out.line("pipetrace --attribution: trace-derived vs. aggregate Figure 1 breakdown");
    out.line(format!(
        "(inputs: {}x{} images, {} dotprod elements, {}x{} video)",
        size.image_w, size.image_h, size.dotprod_n, size.video_w, size.video_h
    ));
    let mut current_bench = None;
    for ((bench, cfg_name, arch, vis), result) in cells.into_iter().zip(results) {
        if current_bench != Some(bench) {
            out.section(bench.name());
            current_bench = Some(bench);
        }
        let label = format!("{}.{}", bench.name(), cfg_name);
        match result {
            Ok((summary, trace)) => {
                let agg = summary.cpu.attribution();
                let tr = trace.attribution;
                let exact = agg == tr && tr.total_units() == summary.cycles() * agg.width;
                let cell = artifact::pipetrace_cell(bench, arch, vis, &summary, &trace);
                if exact {
                    out.line(format!(
                        "{:<9} cycles {:>10}  busy {:>10} fu {:>9} l1h {:>9} l1m {:>9}  ok",
                        cfg_name,
                        summary.cycles(),
                        tr.busy_units,
                        tr.fu_stall_units,
                        tr.l1_hit_units,
                        tr.l1_miss_units,
                    ));
                    out.cell(cell);
                } else {
                    let err = SimError::Invariant {
                        model: "trace",
                        detail: format!(
                            "trace attribution {tr:?} != aggregate {agg:?} (cycles {})",
                            summary.cycles()
                        ),
                    };
                    out.fail(&label, &err, cell);
                }
            }
            Err(e) => {
                let cell =
                    artifact::failed_cell(bench.name(), artifact::pipetrace_config(arch, vis), &e);
                out.fail(&label, &e, cell);
            }
        }
    }
    out.finish();
}

fn main() {
    let cli = parse_cli();
    if cli.attribution {
        run_attribution(&cli);
    }
    run_single(&cli);
}
