//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts an optional size argument:
//!
//! ```text
//! cargo run --release -p visim-bench --bin fig1 [tiny|study|paper]
//! ```
//!
//! `study` (the default) is the scaled-down geometry documented in
//! DESIGN.md; `paper` is the full 1024×640 / 352×240 geometry (slow).
//!
//! The simulation binaries degrade gracefully: a benchmark whose
//! simulation fails (workload panic, invariant violation, watchdog
//! abort — see `visim_util::SimError`) becomes an error row while the
//! remaining benchmarks still produce bars. On failure the partial
//! output is also written to `results/partial/<name>.txt` (plus one
//! uniquely-named `<name>.<benchmark>.txt` artifact per failure) and
//! the process exits nonzero.
//!
//! All simulation binaries run their (benchmark × configuration) cells
//! on the experiment worker pool: `VISIM_JOBS=N` selects the worker
//! count, `VISIM_JOBS=1` is the serial reference path, and unset (or
//! `0`) auto-detects one worker per core. Output is byte-identical for
//! any worker count.
//!
//! Every binary is also crash-safe: finished cells persist in the
//! content-addressed result store (`results/store/` by default, see
//! `visim::store`), and `--resume` (or `VISIM_RESUME=1`) serves them
//! back instead of re-simulating, producing byte-identical text output.
//! `--no-store` opts out; `VISIM_FAULT` arms the deterministic
//! fault-injection harness for testing the recovery paths.

pub mod render;

use std::io::IsTerminal as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use visim::bench::WorkloadSize;
use visim_obs::schema::{self, ResultsDoc};
use visim_obs::Json;
use visim_util::SimError;

/// Environment variable that silences the stderr progress heartbeat
/// when set to `1` (it is also suppressed whenever stderr is not a
/// terminal). Shared with the structured logger
/// ([`visim_obs::log::QUIET_ENV`]): one knob silences both.
pub const QUIET_ENV: &str = visim_obs::log::QUIET_ENV;

/// The usage text for a figure/table binary named `bin` whose one-line
/// purpose is `about`.
pub fn usage(bin: &str, about: &str) -> String {
    format!(
        "{bin}: {about}\n\
         \n\
         Usage: {bin} [tiny|study|paper] [--resume] [--no-store] [--store-dir D]\n\
         \x20         [--no-trace-cache] [--trace-cache-mb N] [--sample [W:P]]\n\
         \x20         [--manifest F] [--help]\n\
         \n\
         Sizes:\n\
         \x20 tiny    smallest inputs; seconds, used by tests and CI\n\
         \x20 study   scaled-down geometry documented in DESIGN.md (default)\n\
         \x20 paper   full 1024x640 / 352x240 geometry of the paper (slow)\n\
         \n\
         Experiment manifest (declarative grid; see results/manifests/):\n\
         \x20 --manifest F         run the visim-manifest-v1 file F instead of the built-in manifest\n\
         \n\
         Result store (crash-safe resume; results are byte-identical either way):\n\
         \x20 --resume             serve finished cells from the result store, simulate only misses\n\
         \x20 --no-store           do not persist or serve per-cell results\n\
         \x20 --store-dir D        result-store directory (default results/store)\n\
         \n\
         Trace cache (results are byte-identical with it on or off):\n\
         \x20 --no-trace-cache     emit every cell directly; no record/replay\n\
         \x20 --trace-cache-mb N   resident trace budget in MB (default 1024)\n\
         \n\
         Sampled simulation (SMARTS-style; estimates carry confidence intervals):\n\
         \x20 --sample             detailed windows + functional warming, default geometry\n\
         \x20 --sample W:P         explicit window/period in instructions (e.g. 8000:160000)\n\
         \n\
         Environment:\n\
         \x20 VISIM_JOBS            worker count (1 = serial reference path; unset/0 = one per core)\n\
         \x20 VISIM_QUIET           set to 1 to silence the stderr progress heartbeat and logs\n\
         \x20 VISIM_LOG             stderr log level: debug|info|warn|error (default info)\n\
         \x20 VISIM_RESUME          set to 1 to resume from the result store (same as --resume)\n\
         \x20 VISIM_NO_STORE        set to 1 to disable the result store (same as --no-store)\n\
         \x20 VISIM_STORE_DIR       result-store directory (flag takes precedence)\n\
         \x20 VISIM_FAULT           inject deterministic faults, e.g. cell.transient:conv:0 (see EXPERIMENTS.md)\n\
         \x20 VISIM_NO_TRACE_CACHE  set to 1 to disable the trace cache (same as the flag)\n\
         \x20 VISIM_TRACE_MB        resident trace budget in MB (flag takes precedence)\n\
         \x20 VISIM_TRACE_DIR       directory for the on-disk trace spill (unset = memory only)\n\
         \x20 VISIM_SPILL_EMIT_MBPS spill only streams emitting slower than this (default 200)\n\
         \x20 VISIM_SAMPLE          1 or W:P to enable sampled simulation (flag takes precedence)\n\
         \n\
         Output: text report on stdout, machine-readable twin under results/json/."
    )
}

/// Parse the common CLI of a figure/table binary: an optional size
/// argument (defaults to `study`), the trace-cache flags
/// (`--no-trace-cache`, `--trace-cache-mb N` — applied to the
/// process-wide [`visim::trace_cache`] before any simulation runs),
/// the result-store flags (`--resume`, `--no-store`, `--store-dir D` —
/// applied to [`visim::store`]), plus `--help`/`-h`. Installs
/// `results/store` as the default store directory, which is why only
/// the binaries (never library unit tests) persist cells. Returns the
/// size label alongside the geometry (the label goes into the JSON
/// artifact's `"size"` member). Unknown or malformed arguments print
/// the usage text to stderr and exit 2.
pub fn parse_size_args(bin: &str, about: &str) -> (&'static str, WorkloadSize) {
    visim::store::set_default_dir("results/store");
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        eprintln!("\n{}", usage(bin, about));
        std::process::exit(2);
    };
    let mut picked: Option<(&'static str, WorkloadSize)> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage(bin, about));
                std::process::exit(0);
            }
            "--resume" => visim::store::set_cli_resume(),
            "--no-store" => visim::store::set_cli_disabled(),
            "--store-dir" => match args.next() {
                Some(d) if !d.is_empty() && !d.starts_with('-') => {
                    visim::store::set_cli_dir(&d);
                }
                _ => bad("--store-dir expects a directory path".into()),
            },
            "--no-trace-cache" => visim::trace_cache::set_cli_disabled(),
            "--manifest" => match args.next() {
                Some(p) if !p.is_empty() && !p.starts_with('-') => {
                    visim::manifest::set_cli_path(&p);
                }
                _ => bad("--manifest expects a manifest file path".into()),
            },
            "--sample" => {
                // An optional W:P geometry may follow; a size word or
                // another flag means the default geometry.
                let spec = match args.peek() {
                    Some(next) if next.contains(':') => args.next().unwrap(),
                    _ => "1".to_string(),
                };
                match visim::sampling::parse_spec(&spec) {
                    Ok(cfg) => visim::sampling::set_cli(Some(cfg)),
                    Err(e) => bad(format!("--sample: {e}")),
                }
            }
            "--trace-cache-mb" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(mb) if mb >= 1 => visim::trace_cache::set_cli_budget_mb(mb),
                _ => bad("--trace-cache-mb expects a positive integer (megabytes)".into()),
            },
            "tiny" | "study" | "paper" if picked.is_none() => {
                picked = Some(match arg.as_str() {
                    "tiny" => ("tiny", WorkloadSize::tiny()),
                    "paper" => ("paper", WorkloadSize::paper()),
                    _ => ("study", WorkloadSize::study()),
                });
            }
            other => bad(format!(
                "unknown argument '{other}', expected tiny|study|paper or a --flag"
            )),
        }
    }
    picked.unwrap_or(("study", WorkloadSize::study()))
}

/// Render one heartbeat message: completed cells out of the total, plus
/// a naive ETA extrapolated from the mean per-cell latency so far. The
/// binary's label is carried by the log line's component field, not
/// repeated here.
pub fn format_heartbeat(done: usize, total: usize, elapsed_secs: f64) -> String {
    let eta = if done > 0 {
        elapsed_secs / done as f64 * total.saturating_sub(done) as f64
    } else {
        0.0
    };
    format!("{done}/{total} cells done, ETA ~{eta:.0}s")
}

/// Whether the stderr heartbeat should run: stderr must be a terminal
/// (so redirected/CI runs stay clean) and the structured logger must be
/// at `info` or chattier — `VISIM_QUIET=1` and `VISIM_LOG=warn|error`
/// both silence it, uniformly with the daemon's log lines.
fn heartbeat_enabled() -> bool {
    visim_obs::log::enabled(visim_obs::log::Level::Info) && std::io::stderr().is_terminal()
}

/// Heartbeat warm-up: no lines in the first couple of seconds, so quick
/// tiny-size runs stay silent.
const HEARTBEAT_WARMUP_MS: u64 = 2_000;

/// Heartbeat rate limit: at most one line per second after warm-up.
const HEARTBEAT_PERIOD_MS: u64 = 1_000;

/// Install the stderr progress heartbeat for the binary named `label`:
/// after every completed worker-pool cell (and past a short warm-up) it
/// prints a rate-limited `label: N/M cells done, ETA ~Xs` line. The
/// observer only sees completion counts, so simulation output is
/// unaffected; it is a no-op when [`heartbeat_enabled`] says so.
fn install_heartbeat(label: String) {
    if !heartbeat_enabled() {
        return;
    }
    let started = Instant::now();
    let last_ms = AtomicU64::new(0);
    visim::experiment::set_progress_observer(Some(Box::new(move |done, total, _run_ns| {
        let elapsed = started.elapsed();
        let now_ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
        if now_ms < HEARTBEAT_WARMUP_MS {
            return;
        }
        let prev = last_ms.load(Ordering::Relaxed);
        if done < total && now_ms.saturating_sub(prev) < HEARTBEAT_PERIOD_MS {
            return;
        }
        // One printer per tick: racing workers that lose the exchange
        // drop their line instead of double-printing.
        if last_ms
            .compare_exchange(prev, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        visim_obs::log::info(
            &label,
            &format_heartbeat(done, total, elapsed.as_secs_f64()),
        );
    })));
}

/// Print a titled section.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Accumulating report writer for the simulation binaries.
///
/// Mirrors everything to stdout (so redirecting a healthy run into
/// `results/<name>.txt` keeps working unchanged) while buffering the
/// text and recording failures; [`Report::finish`] turns failures into
/// a partial-results file and a nonzero exit.
///
/// Alongside the text stream, the report accumulates a
/// `visim-results-v2` document ([`Report::cell`]) that [`Report::finish`]
/// writes to `results/json/<name>.json` — the machine-readable twin of
/// the text output, carrying the full per-cell simulation payload plus
/// run-level metrics (worker-pool timings, wall clock, git revision).
/// Wall-clock data lives only in the JSON artifact, never in the text
/// stream, which stays byte-identical across runs and worker counts.
pub struct Report {
    name: String,
    buf: String,
    failures: Vec<(String, SimError)>,
    /// Write artifacts under `results/` (disabled in unit tests so they
    /// do not touch the working tree).
    artifacts: bool,
    doc: ResultsDoc,
    started: Instant,
}

impl Report {
    /// A report for the experiment named `name` (used for the partial
    /// file and the JSON artifact; historically the binary name, now
    /// the manifest name) at workload size `size_label`.
    pub fn new(name: &str, size_label: &str) -> Self {
        install_heartbeat(name.to_string());
        if let Some(prior) = visim::journal::begin(name, size_label) {
            if visim::store::resume() {
                visim_obs::log::info(
                    name,
                    &format!("resuming; journal records {prior} previously completed cell(s)"),
                );
            }
        }
        Report {
            name: name.to_string(),
            buf: String::new(),
            failures: Vec::new(),
            artifacts: true,
            doc: ResultsDoc::new(name, size_label, visim::experiment::jobs()),
            started: Instant::now(),
        }
    }

    /// Append one line (adds the newline).
    pub fn line(&mut self, s: impl AsRef<str>) {
        println!("{}", s.as_ref());
        self.buf.push_str(s.as_ref());
        self.buf.push('\n');
    }

    /// Append pre-formatted text verbatim (tables end with their own
    /// newline).
    pub fn push(&mut self, s: &str) {
        print!("{s}");
        self.buf.push_str(s);
    }

    /// Append a titled section, in the same format as [`section`].
    pub fn section(&mut self, title: &str) {
        self.line(format!("\n=== {title} ===\n"));
    }

    /// Append one machine-readable result cell to the JSON document
    /// (see `visim::artifact` for the cell builders).
    pub fn cell(&mut self, cell: Json) {
        self.doc.push_cell(cell);
    }

    /// Number of cells recorded so far.
    pub fn cell_count(&self) -> usize {
        self.doc.cell_count()
    }

    /// Record a failed unit of work (one benchmark, usually) and emit
    /// its error row. `cell` is the matching `"status": "failed"`
    /// result cell; it joins the JSON document and is also written as
    /// `results/partial/<binary>.<benchmark>.json`. Each failure also
    /// gets its own uniquely-named text artifact under
    /// `results/partial/` (`<binary>.<benchmark>.txt`), so
    /// per-benchmark diagnostics never share a file — concurrent runs
    /// of different binaries cannot interleave inside one.
    pub fn fail(&mut self, label: &str, err: &SimError, cell: Json) {
        self.line(format!("{label}: ERROR: {err}"));
        if self.artifacts {
            let detail = format!("{}: {label}: ERROR: {err}\n", self.name);
            if let Err(e) = write_atomic(
                &format!("results/partial/{}.{}.txt", self.name, sanitize(label)),
                detail.as_bytes(),
            ) {
                eprintln!("could not write per-benchmark failure artifact: {e}");
            }
            let artifact = Json::obj(vec![
                ("schema", Json::from(schema::RESULTS_SCHEMA)),
                ("name", Json::from(self.name.as_str())),
                ("cell", cell.clone()),
            ]);
            let mut text = artifact.to_pretty();
            text.push('\n');
            if let Err(e) = write_atomic(
                &format!("results/partial/{}.{}.json", self.name, sanitize(label)),
                text.as_bytes(),
            ) {
                eprintln!("could not write per-benchmark failure JSON artifact: {e}");
            }
        }
        self.doc.push_cell(cell);
        self.failures.push((label.to_string(), err.clone()));
    }

    /// Number of failures recorded so far.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Finish the run: write the JSON artifact, then exit 0 when
    /// everything succeeded; otherwise write the partial output to
    /// `results/partial/<name>.txt`, summarize the failures on stderr,
    /// and exit 1.
    ///
    /// The report stream has a single writer by construction — the
    /// experiment executor fans simulations out over worker threads,
    /// but every [`Report`] method runs on the main thread after the
    /// results are reassembled — and the file lands via a write-to-temp
    /// then atomic-rename, so a concurrently running sibling process
    /// can never observe (or splice into) a half-written report.
    pub fn finish(mut self) -> ! {
        // Drain the pool observability accumulated by every
        // run_parallel call into the document, then write it — failed
        // cells included, so a degraded run still leaves a usable
        // machine-readable record.
        self.doc
            .metrics
            .merge(&visim::experiment::drain_pool_metrics());
        if self.artifacts {
            let json_path = format!("results/json/{}.json", self.name);
            let mut text = self
                .doc
                .to_json(self.started.elapsed().as_secs_f64())
                .to_pretty();
            text.push('\n');
            if let Err(e) = write_atomic(&json_path, text.as_bytes()) {
                eprintln!("could not write JSON artifact to {json_path}: {e}");
            }
        }
        visim::journal::finish(self.failures.len() as u64);
        if self.failures.is_empty() {
            std::process::exit(0);
        }
        let path = format!("results/partial/{}.txt", self.name);
        match write_atomic(&path, self.buf.as_bytes()) {
            Ok(()) => eprintln!("partial results written to {path}"),
            Err(e) => eprintln!("could not write partial results to {path}: {e}"),
        }
        eprintln!("{}: {} of the runs failed:", self.name, self.failures.len());
        for (label, err) in &self.failures {
            eprintln!("  {label}: {err}");
        }
        std::process::exit(1);
    }
}

/// Map a benchmark label onto a filename-safe slug.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Write `bytes` to `path` atomically. Delegates to the workspace-wide
/// write path ([`visim_util::atomic::write_atomic`]) so every durable
/// artifact — JSON documents, partial-failure droppings, result-store
/// cells, trace spills — lands through the same temp-file, `sync_all`,
/// rename discipline. Readers (and concurrent writers of the same path)
/// see either the old complete file or the new complete file, never a
/// mix.
pub fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    visim_util::atomic::write_atomic(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_is_study() {
        // No args in the test harness beyond the binary name; argv[1]
        // may hold a test filter, so only check it does not panic for
        // the recognized names.
        let s = WorkloadSize::study();
        assert_eq!(s.image_w, 256);
    }

    #[test]
    fn report_accumulates_failures() {
        let mut r = Report::new("test", "tiny");
        r.artifacts = false; // keep unit tests out of the working tree
        r.line("hello");
        r.push("table\n");
        assert_eq!(r.failure_count(), 0);
        let err = SimError::Workload {
            bench: "blend".into(),
            detail: "injected".into(),
        };
        let cell = visim::artifact::failed_cell(
            "blend",
            Json::obj(vec![("figure", Json::from("test"))]),
            &err,
        );
        r.fail("blend", &err, cell);
        assert_eq!(r.failure_count(), 1);
        assert_eq!(r.cell_count(), 1, "failed cell joins the JSON doc");
        assert!(r.buf.contains("blend: ERROR:"), "{}", r.buf);
    }

    #[test]
    fn heartbeat_lines_report_progress_and_eta() {
        assert_eq!(format_heartbeat(18, 72, 9.0), "18/72 cells done, ETA ~27s");
        assert_eq!(format_heartbeat(72, 72, 30.0), "72/72 cells done, ETA ~0s");
        // No division by zero before the first completion.
        assert_eq!(format_heartbeat(0, 72, 1.0), "0/72 cells done, ETA ~0s");
    }

    #[test]
    fn usage_names_the_binary_and_the_sizes() {
        let u = usage("fig1", "regenerate Figure 1");
        assert!(u.starts_with("fig1: regenerate Figure 1"));
        for needle in [
            "tiny",
            "study",
            "paper",
            "--help",
            "--no-trace-cache",
            "--trace-cache-mb",
            "VISIM_JOBS",
            "VISIM_QUIET",
            "VISIM_LOG",
            "--resume",
            "--no-store",
            "--store-dir",
            "VISIM_RESUME",
            "VISIM_NO_STORE",
            "VISIM_STORE_DIR",
            "VISIM_FAULT",
            "VISIM_NO_TRACE_CACHE",
            "VISIM_TRACE_MB",
            "VISIM_TRACE_DIR",
            "VISIM_SPILL_EMIT_MBPS",
            "--sample",
            "VISIM_SAMPLE",
            "--manifest",
        ] {
            assert!(u.contains(needle), "usage misses {needle}: {u}");
        }
    }

    #[test]
    fn sanitize_keeps_benchmark_names_and_defangs_the_rest() {
        assert_eq!(sanitize("mpeg-enc"), "mpeg-enc");
        assert_eq!(sanitize("cjpeg-np"), "cjpeg-np");
        assert_eq!(sanitize("../evil name"), "___evil_name");
    }
}
