//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts an optional size argument:
//!
//! ```text
//! cargo run --release -p visim-bench --bin fig1 [tiny|study|paper]
//! ```
//!
//! `study` (the default) is the scaled-down geometry documented in
//! DESIGN.md; `paper` is the full 1024×640 / 352×240 geometry (slow).
//!
//! The simulation binaries degrade gracefully: a benchmark whose
//! simulation fails (workload panic, invariant violation, watchdog
//! abort — see `visim_util::SimError`) becomes an error row while the
//! remaining benchmarks still produce bars. On failure the partial
//! output is also written to `results/partial/<name>.txt` (plus one
//! uniquely-named `<name>.<benchmark>.txt` artifact per failure) and
//! the process exits nonzero.
//!
//! All simulation binaries run their (benchmark × configuration) cells
//! on the experiment worker pool: `VISIM_JOBS=N` selects the worker
//! count, `VISIM_JOBS=1` is the serial reference path, and unset (or
//! `0`) auto-detects one worker per core. Output is byte-identical for
//! any worker count.

use std::io::Write as _;

use visim::bench::WorkloadSize;
use visim_util::SimError;

/// Parse the common size argument (defaults to `study`).
pub fn size_from_args() -> WorkloadSize {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => WorkloadSize::tiny(),
        Some("paper") => WorkloadSize::paper(),
        Some("study") | None => WorkloadSize::study(),
        Some(other) => {
            eprintln!("unknown size '{other}', expected tiny|study|paper");
            std::process::exit(2);
        }
    }
}

/// Print a titled section.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Accumulating report writer for the simulation binaries.
///
/// Mirrors everything to stdout (so redirecting a healthy run into
/// `results/<name>.txt` keeps working unchanged) while buffering the
/// text and recording failures; [`Report::finish`] turns failures into
/// a partial-results file and a nonzero exit.
pub struct Report {
    name: &'static str,
    buf: String,
    failures: Vec<(String, SimError)>,
    /// Write per-failure artifacts under `results/partial/` (disabled
    /// in unit tests so they do not touch the working tree).
    artifacts: bool,
}

impl Report {
    /// A report for the binary named `name` (used for the partial file).
    pub fn new(name: &'static str) -> Self {
        Report {
            name,
            buf: String::new(),
            failures: Vec::new(),
            artifacts: true,
        }
    }

    /// Append one line (adds the newline).
    pub fn line(&mut self, s: impl AsRef<str>) {
        println!("{}", s.as_ref());
        self.buf.push_str(s.as_ref());
        self.buf.push('\n');
    }

    /// Append pre-formatted text verbatim (tables end with their own
    /// newline).
    pub fn push(&mut self, s: &str) {
        print!("{s}");
        self.buf.push_str(s);
    }

    /// Append a titled section, in the same format as [`section`].
    pub fn section(&mut self, title: &str) {
        self.line(format!("\n=== {title} ===\n"));
    }

    /// Record a failed unit of work (one benchmark, usually) and emit
    /// its error row. Each failure also gets its own uniquely-named
    /// artifact under `results/partial/` (`<binary>.<benchmark>.txt`),
    /// so per-benchmark diagnostics never share a file — concurrent
    /// runs of different binaries cannot interleave inside one.
    pub fn fail(&mut self, label: &str, err: &SimError) {
        self.line(format!("{label}: ERROR: {err}"));
        if self.artifacts {
            let detail = format!("{}: {label}: ERROR: {err}\n", self.name);
            if let Err(e) = write_atomic(
                &format!("results/partial/{}.{}.txt", self.name, sanitize(label)),
                detail.as_bytes(),
            ) {
                eprintln!("could not write per-benchmark failure artifact: {e}");
            }
        }
        self.failures.push((label.to_string(), err.clone()));
    }

    /// Number of failures recorded so far.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Finish the run: exit 0 when everything succeeded; otherwise
    /// write the partial output to `results/partial/<name>.txt`,
    /// summarize the failures on stderr, and exit 1.
    ///
    /// The report stream has a single writer by construction — the
    /// experiment executor fans simulations out over worker threads,
    /// but every [`Report`] method runs on the main thread after the
    /// results are reassembled — and the file lands via a write-to-temp
    /// then atomic-rename, so a concurrently running sibling process
    /// can never observe (or splice into) a half-written report.
    pub fn finish(self) -> ! {
        if self.failures.is_empty() {
            std::process::exit(0);
        }
        let path = format!("results/partial/{}.txt", self.name);
        match write_atomic(&path, self.buf.as_bytes()) {
            Ok(()) => eprintln!("partial results written to {path}"),
            Err(e) => eprintln!("could not write partial results to {path}: {e}"),
        }
        eprintln!("{}: {} of the runs failed:", self.name, self.failures.len());
        for (label, err) in &self.failures {
            eprintln!("  {label}: {err}");
        }
        std::process::exit(1);
    }
}

/// Map a benchmark label onto a filename-safe slug.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Write `bytes` to `path` atomically: create `results/partial/`, write
/// a process-unique temp file, then rename it into place. Readers (and
/// concurrent writers of the same path) see either the old complete
/// file or the new complete file, never a mix.
fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::create_dir_all("results/partial")?;
    let tmp = format!("{path}.{}.tmp", std::process::id());
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_is_study() {
        // No args in the test harness beyond the binary name; argv[1]
        // may hold a test filter, so only check it does not panic for
        // the recognized names.
        let s = WorkloadSize::study();
        assert_eq!(s.image_w, 256);
    }

    #[test]
    fn report_accumulates_failures() {
        let mut r = Report::new("test");
        r.artifacts = false; // keep unit tests out of the working tree
        r.line("hello");
        r.push("table\n");
        assert_eq!(r.failure_count(), 0);
        r.fail(
            "blend",
            &SimError::Workload {
                bench: "blend".into(),
                detail: "injected".into(),
            },
        );
        assert_eq!(r.failure_count(), 1);
        assert!(r.buf.contains("blend: ERROR:"), "{}", r.buf);
    }

    #[test]
    fn sanitize_keeps_benchmark_names_and_defangs_the_rest() {
        assert_eq!(sanitize("mpeg-enc"), "mpeg-enc");
        assert_eq!(sanitize("cjpeg-np"), "cjpeg-np");
        assert_eq!(sanitize("../evil name"), "___evil_name");
    }
}
