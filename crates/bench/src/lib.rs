//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts an optional size argument:
//!
//! ```text
//! cargo run --release -p visim-bench --bin fig1 [tiny|study|paper]
//! ```
//!
//! `study` (the default) is the scaled-down geometry documented in
//! DESIGN.md; `paper` is the full 1024×640 / 352×240 geometry (slow).

use visim::bench::WorkloadSize;

/// Parse the common size argument (defaults to `study`).
pub fn size_from_args() -> WorkloadSize {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => WorkloadSize::tiny(),
        Some("paper") => WorkloadSize::paper(),
        Some("study") | None => WorkloadSize::study(),
        Some(other) => {
            eprintln!("unknown size '{other}', expected tiny|study|paper");
            std::process::exit(2);
        }
    }
}

/// Print a titled section.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_is_study() {
        // No args in the test harness beyond the binary name; argv[1]
        // may hold a test filter, so only check it does not panic for
        // the recognized names.
        let s = WorkloadSize::study();
        assert_eq!(s.image_w, 256);
    }
}
