//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts an optional size argument:
//!
//! ```text
//! cargo run --release -p visim-bench --bin fig1 [tiny|study|paper]
//! ```
//!
//! `study` (the default) is the scaled-down geometry documented in
//! DESIGN.md; `paper` is the full 1024×640 / 352×240 geometry (slow).
//!
//! The simulation binaries degrade gracefully: a benchmark whose
//! simulation fails (workload panic, invariant violation, watchdog
//! abort — see `visim_util::SimError`) becomes an error row while the
//! remaining benchmarks still produce bars. On failure the partial
//! output is also written to `results/partial/<name>.txt` and the
//! process exits nonzero.

use std::io::Write as _;

use visim::bench::WorkloadSize;
use visim_util::SimError;

/// Parse the common size argument (defaults to `study`).
pub fn size_from_args() -> WorkloadSize {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => WorkloadSize::tiny(),
        Some("paper") => WorkloadSize::paper(),
        Some("study") | None => WorkloadSize::study(),
        Some(other) => {
            eprintln!("unknown size '{other}', expected tiny|study|paper");
            std::process::exit(2);
        }
    }
}

/// Print a titled section.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Accumulating report writer for the simulation binaries.
///
/// Mirrors everything to stdout (so redirecting a healthy run into
/// `results/<name>.txt` keeps working unchanged) while buffering the
/// text and recording failures; [`Report::finish`] turns failures into
/// a partial-results file and a nonzero exit.
pub struct Report {
    name: &'static str,
    buf: String,
    failures: Vec<(String, SimError)>,
}

impl Report {
    /// A report for the binary named `name` (used for the partial file).
    pub fn new(name: &'static str) -> Self {
        Report {
            name,
            buf: String::new(),
            failures: Vec::new(),
        }
    }

    /// Append one line (adds the newline).
    pub fn line(&mut self, s: impl AsRef<str>) {
        println!("{}", s.as_ref());
        self.buf.push_str(s.as_ref());
        self.buf.push('\n');
    }

    /// Append pre-formatted text verbatim (tables end with their own
    /// newline).
    pub fn push(&mut self, s: &str) {
        print!("{s}");
        self.buf.push_str(s);
    }

    /// Append a titled section, in the same format as [`section`].
    pub fn section(&mut self, title: &str) {
        self.line(format!("\n=== {title} ===\n"));
    }

    /// Record a failed unit of work (one benchmark, usually) and emit
    /// its error row.
    pub fn fail(&mut self, label: &str, err: &SimError) {
        self.line(format!("{label}: ERROR: {err}"));
        self.failures.push((label.to_string(), err.clone()));
    }

    /// Number of failures recorded so far.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Finish the run: exit 0 when everything succeeded; otherwise
    /// write the partial output to `results/partial/<name>.txt`,
    /// summarize the failures on stderr, and exit 1.
    pub fn finish(self) -> ! {
        if self.failures.is_empty() {
            std::process::exit(0);
        }
        let path = format!("results/partial/{}.txt", self.name);
        match std::fs::create_dir_all("results/partial").and_then(|()| {
            let mut f = std::fs::File::create(&path)?;
            f.write_all(self.buf.as_bytes())
        }) {
            Ok(()) => eprintln!("partial results written to {path}"),
            Err(e) => eprintln!("could not write partial results to {path}: {e}"),
        }
        eprintln!("{}: {} of the runs failed:", self.name, self.failures.len());
        for (label, err) in &self.failures {
            eprintln!("  {label}: {err}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_is_study() {
        // No args in the test harness beyond the binary name; argv[1]
        // may hold a test filter, so only check it does not panic for
        // the recognized names.
        let s = WorkloadSize::study();
        assert_eq!(s.image_w, 256);
    }

    #[test]
    fn report_accumulates_failures() {
        let mut r = Report::new("test");
        r.line("hello");
        r.push("table\n");
        assert_eq!(r.failure_count(), 0);
        r.fail(
            "blend",
            &SimError::Workload {
                bench: "blend".into(),
                detail: "injected".into(),
            },
        );
        assert_eq!(r.failure_count(), 1);
        assert!(r.buf.contains("blend: ERROR:"), "{}", r.buf);
    }
}
