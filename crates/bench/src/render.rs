//! The generic manifest renderer behind every figure/table binary.
//!
//! Each binary reduces to `render::manifest_main("<name>")`: load the
//! built-in manifest (or the `--manifest <path>` override), parse the
//! shared CLI, execute the grid through `experiment::run_manifest`, and
//! render the outcome. Rendering is keyed by grid *kind* — table
//! layouts, headline ratios, and in-text statistics are presentation,
//! so they live here, while the manifest carries the data axes. The
//! text and `results/json/` output of every built-in manifest is
//! byte-identical to the hand-rolled drivers this module replaced.

use visim::artifact;
use visim::bench::WorkloadSize;
use visim::experiment::{run_manifest, ManifestOutcome};
use visim::manifest::{Grid, Manifest, SweepCache};
use visim::report;
use visim_obs::Json;

use crate::{parse_size_args, Report};

/// Entry point for a figure/table binary: parse the CLI, load the
/// manifest (built-in `bin`, or the `--manifest` override), run it, and
/// render. Never returns (the report's `finish` exits).
pub fn manifest_main(bin: &'static str) -> ! {
    let builtin =
        Manifest::builtin(bin).unwrap_or_else(|| panic!("no built-in manifest named {bin:?}"));
    let (size_label, size) = parse_size_args(bin, &builtin.about);
    let m = match visim::manifest::cli_path() {
        Some(path) => match Manifest::load_file(&path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("--manifest {path}: {e}");
                std::process::exit(2);
            }
        },
        None => builtin,
    };
    let mut out = Report::new(&m.name, size_label);
    let outcome = run_manifest(&m, &size);
    match outcome {
        ManifestOutcome::Fig1(results) => render_fig1(&mut out, &m, &size, results),
        ManifestOutcome::Fig2(results) => render_fig2(&mut out, &m, results),
        ManifestOutcome::Fig3(results) => render_fig3(&mut out, &m, results),
        ManifestOutcome::Sweep { cache, results } => render_sweep(&mut out, &m, cache, results),
        ManifestOutcome::Tables => out.push(&report::tables_text()),
        ManifestOutcome::Ablation {
            sections,
            histogram,
        } => render_ablation(&mut out, &m, sections, histogram),
        ManifestOutcome::Kernels14(results) => render_kernels14(&mut out, &m, results),
    }
    out.finish();
}

type BenchResults<T> = Vec<(visim::Bench, Result<T, visim_util::SimError>)>;

fn render_fig1(
    out: &mut Report,
    m: &Manifest,
    size: &WorkloadSize,
    results: BenchResults<Vec<visim::experiment::Fig1Bar>>,
) {
    let Grid::Fig1 { archs, .. } = &m.grid else {
        unreachable!("fig1 outcome from a non-fig1 grid");
    };
    if let Some(title) = &m.title {
        out.line(title);
    }
    out.line(format!(
        "(inputs: {}x{} images, {} dotprod elements, {}x{} video)",
        size.image_w, size.image_h, size.dotprod_n, size.video_w, size.video_h
    ));
    for (bench, outcome) in results {
        out.section(bench.name());
        let bars = match outcome {
            Ok(bars) => bars,
            Err(e) => {
                let cell = artifact::failed_cell(bench.name(), artifact::figure_config("fig1"), &e);
                out.fail(bench.name(), &e, cell);
                continue;
            }
        };
        for bar in &bars {
            out.cell(artifact::fig1_cell(bench, bar));
        }
        out.push(&report::table(
            &report::fig1_headers(),
            &report::fig1_rows(&bars),
        ));
        if bars.is_empty() {
            continue;
        }
        // The headline ratios the paper quotes: first-bar vs. last-arch
        // of the base variant, and vs. the last bar overall (for the
        // built-in grid: 1-way base, ooo base, ooo VIS).
        let t = |i: usize| bars[i].summary.cycles() as f64;
        let base_last = archs.len() - 1;
        let last = bars.len() - 1;
        out.line(format!(
            "ILP speedup (1-way -> ooo): {:.2}x   VIS speedup (ooo): {:.2}x   combined: {:.2}x",
            t(0) / t(base_last),
            t(base_last) / t(last),
            t(0) / t(last),
        ));
    }
}

fn render_fig2(out: &mut Report, m: &Manifest, results: BenchResults<visim::experiment::Fig2Row>) {
    let Grid::Fig2 { highlights, .. } = &m.grid else {
        unreachable!("fig2 outcome from a non-fig2 grid");
    };
    if let Some(title) = &m.title {
        out.line(title);
    }
    out.section("instruction mix (percent of the base variant's count)");
    let rows: Vec<_> = results
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().cloned())
        .collect();
    out.push(&report::table(
        &report::fig2_headers(),
        &report::fig2_rows(&rows),
    ));
    for (bench, r) in &results {
        match r {
            Ok(row) => {
                for cell in artifact::fig2_cells(row) {
                    out.cell(cell);
                }
            }
            Err(e) => {
                let cell = artifact::failed_cell(bench.name(), artifact::figure_config("fig2"), e);
                out.fail(bench.name(), e, cell);
            }
        }
    }

    out.section("in-text statistics (paper §3.2.2 / §3.2.3)");
    let mut overhead_sum = 0.0;
    let mut overhead_n = 0;
    for r in &rows {
        if r.vis.mix[3] > 0 {
            overhead_sum += r.vis.vis_overhead_fraction();
            overhead_n += 1;
        }
    }
    out.line(format!(
        "average VIS rearrangement/alignment overhead: {:.0}% of VIS instructions (paper: ~41%)",
        100.0 * overhead_sum / overhead_n.max(1) as f64
    ));
    for name in highlights {
        if let Some(r) = rows.iter().find(|r| r.bench.name() == name) {
            out.line(format!(
                "{name}: branch misprediction {:.1}% -> {:.1}% with VIS",
                100.0 * r.base.mispredict_rate(),
                100.0 * r.vis.mispredict_rate()
            ));
        }
    }
}

fn render_fig3(out: &mut Report, m: &Manifest, results: BenchResults<visim::experiment::Fig3Row>) {
    if let Some(title) = &m.title {
        out.line(title);
    }
    out.section("normalized execution time");
    let rows: Vec<_> = results
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().cloned())
        .collect();
    out.push(&report::table(
        &report::fig3_headers(),
        &report::fig3_rows(&rows),
    ));
    for (bench, r) in &results {
        match r {
            Ok(row) => {
                for cell in artifact::fig3_cells(row) {
                    out.cell(cell);
                }
            }
            Err(e) => {
                let cell = artifact::failed_cell(bench.name(), artifact::figure_config("fig3"), e);
                out.fail(bench.name(), e, cell);
            }
        }
    }

    // The paper's claim: with prefetching, every benchmark reverts to
    // being compute-bound.
    out.section("compute- vs memory-bound after prefetching");
    for r in &rows {
        let bd = r.pf.cpu.breakdown();
        let memfrac = bd.memory() / r.pf.cycles() as f64;
        out.line(format!(
            "{:<10} memory fraction {:>5.1}%  -> {}",
            r.bench.name(),
            100.0 * memfrac,
            if memfrac < 0.5 {
                "compute-bound"
            } else {
                "memory-bound"
            }
        ));
    }
}

fn render_sweep(
    out: &mut Report,
    m: &Manifest,
    cache: SweepCache,
    results: BenchResults<Vec<visim::experiment::SweepPoint>>,
) {
    if let Some(title) = &m.title {
        out.line(title);
    }
    for (bench, outcome) in results {
        out.section(bench.name());
        let points = match outcome {
            Ok(points) => points,
            Err(e) => {
                let cell = artifact::failed_cell(
                    bench.name(),
                    artifact::figure_config(&format!("sweep_{}", cache.key())),
                    &e,
                );
                out.fail(bench.name(), &e, cell);
                continue;
            }
        };
        for pt in &points {
            out.cell(artifact::sweep_cell(bench, cache.key(), pt));
        }
        out.push(&report::table(
            &report::sweep_headers(),
            &report::sweep_rows(&points),
        ));
        if points.is_empty() {
            continue;
        }
        let best = points
            .iter()
            .map(|pt| pt.summary.cycles())
            .min()
            .unwrap_or(1) as f64;
        match cache {
            SweepCache::L1 => {
                let worst = points
                    .iter()
                    .map(|pt| pt.summary.cycles())
                    .max()
                    .unwrap_or(1) as f64;
                out.line(format!("1K-vs-64K spread: {:.2}x", worst / best));
            }
            SweepCache::L2 => {
                let base = points[0].summary.cycles() as f64;
                out.line(format!("max benefit from larger L2: {:.2}x", base / best));
            }
        }
    }
}

/// Cell configuration for one ablation run: which sweep (`section`) and
/// which point on it (`value`, with `"base"` for the baseline run).
fn ablation_config(key: &str, value: &str) -> Json {
    Json::obj(vec![
        ("figure", Json::from("ablation")),
        ("section", Json::from(key)),
        ("value", Json::from(value)),
    ])
}

fn render_ablation(
    out: &mut Report,
    m: &Manifest,
    section_sums: Vec<Vec<visim_cpu::Summary>>,
    histogram_sums: Vec<visim_cpu::Summary>,
) {
    let Grid::Ablation {
        benchmarks,
        sections,
        histogram,
    } = &m.grid
    else {
        unreachable!("ablation outcome from a non-ablation grid");
    };
    for (section, sums) in sections.iter().zip(section_sums) {
        out.section(&section.title);
        let per_bench = section.values.len() + 1;
        let mut rows = Vec::new();
        for (bench, chunk) in benchmarks.iter().zip(sums.chunks_exact(per_bench)) {
            let values =
                std::iter::once("base").chain(section.headers[1..].iter().map(String::as_str));
            for (s, value) in chunk.iter().zip(values) {
                out.cell(artifact::timed_cell(
                    bench.name(),
                    ablation_config(&section.key, value),
                    s,
                ));
            }
            let base = chunk[0].cycles() as f64;
            let mut row = vec![bench.name().to_string()];
            for s in &chunk[1..] {
                row.push(format!("{:.2}x", s.cycles() as f64 / base));
            }
            rows.push(row);
        }
        let headers: Vec<&str> = section.headers.iter().map(String::as_str).collect();
        out.push(&report::table(&headers, &rows));
    }

    out.section(&histogram.title);
    let mut sums = histogram_sums.into_iter();
    for bench in &histogram.benchmarks {
        for (label, _) in &histogram.variants {
            let s = sums.next().expect("one summary per histogram cell");
            out.cell(artifact::timed_cell(
                bench.name(),
                ablation_config("mshr-occupancy", label),
                &s,
            ));
            let hist = &s.mshr_histogram;
            let total: u64 = hist.iter().sum();
            let frac_ge5: u64 = hist.iter().skip(5).sum();
            out.line(format!(
                "{:<10} {:<7} cycles with >=5 outstanding misses: {:>5.1}%",
                bench.name(),
                label,
                100.0 * frac_ge5 as f64 / total.max(1) as f64
            ));
        }
    }
}

/// Cell configuration for the kernel sweep's runs.
fn kernels_config(timed: bool, variant: &str) -> Json {
    Json::obj(vec![
        ("figure", Json::from("kernels14")),
        ("timed", Json::from(timed)),
        ("variant", Json::from(variant)),
    ])
}

fn render_kernels14(
    out: &mut Report,
    m: &Manifest,
    results: Vec<(
        media_kernels::KernelId,
        Result<visim::kernels14::KernelCell, visim_util::SimError>,
    )>,
) {
    use media_kernels::KernelId;
    if let Some(title) = &m.title {
        out.section(title);
    }
    let mut rows = Vec::new();
    for (k, result) in &results {
        let cell = match result {
            Ok(cell) => cell,
            Err(e) => {
                out.fail(
                    k.name(),
                    e,
                    artifact::failed_cell(k.name(), kernels_config(true, "any"), e),
                );
                continue;
            }
        };
        out.cell(artifact::counted_cell(
            k.name(),
            kernels_config(false, "base"),
            &cell.base,
        ));
        out.cell(artifact::counted_cell(
            k.name(),
            kernels_config(false, "vis"),
            &cell.vis,
        ));
        out.cell(artifact::timed_cell(
            k.name(),
            kernels_config(true, "base"),
            &cell.timed_base,
        ));
        out.cell(artifact::timed_cell(
            k.name(),
            kernels_config(true, "vis"),
            &cell.timed_vis,
        ));
        rows.push(vec![
            k.name().to_string(),
            if KernelId::reported().contains(k) {
                "reported".into()
            } else {
                String::new()
            },
            format!(
                "{:.1}",
                100.0 * cell.vis.retired as f64 / cell.base.retired as f64
            ),
            format!(
                "{:.2}x",
                cell.timed_base.cycles() as f64 / cell.timed_vis.cycles() as f64
            ),
            format!(
                "{:.0}%",
                100.0 * cell.timed_vis.cpu.breakdown().memory() / cell.timed_vis.cycles() as f64
            ),
        ]);
    }
    out.push(&report::table(
        &[
            "kernel",
            "in paper figs",
            "VIS insts %",
            "VIS speedup",
            "mem% (VIS)",
        ],
        &rows,
    ));
    out.line(
        "\nlookup and histogram are the VIS-inapplicable scatter/gather cases \
         (§3.2.3);\ncopy is bandwidth-bound in both variants.",
    );
}
