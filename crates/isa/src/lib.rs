//! Instruction-set model for the `visim` simulator.
//!
//! This crate defines the *dynamic instruction* representation consumed by
//! the pipeline models in `visim-cpu`, mirroring the ISA assumed by
//! Ranganathan, Adve and Jouppi (ISCA 1999): a SPARC-V9-like scalar RISC
//! core plus the Sun VIS media ISA extensions.
//!
//! Three layers live here:
//!
//! * [`op`] — operation kinds, the functional-unit class each op needs,
//!   default latencies (Table 2 of the paper), and the instruction
//!   categories used for the paper's Figure 2 instruction-mix breakdown.
//! * [`inst`] — the [`inst::Inst`] record itself: virtual registers,
//!   memory reference and branch metadata.
//! * [`vis`] — *functional* semantics of the VIS-style packed operations
//!   (packed arithmetic, pack/expand/merge/align, partitioned compares,
//!   edge masks, `pdist`, and the graphics status register), used by the
//!   workload emitter so that VIS benchmark variants compute real data.
//!
//! # Example
//!
//! ```
//! use visim_isa::vis;
//!
//! // Two packed-16 lanes-of-four additions.
//! let a = vis::pack16([1, 2, 3, 4]);
//! let b = vis::pack16([10, 20, 30, 40]);
//! assert_eq!(vis::unpack16(vis::fpadd16(a, b)), [11, 22, 33, 44]);
//! ```

pub mod inst;
pub mod op;
pub mod vis;

pub use inst::{BranchInfo, BranchKind, Inst, MemKind, MemRef, Reg};
pub use op::{FuKind, InstCat, LatencyTable, Op};
