//! Functional semantics of the VIS-style packed (subword-SIMD) operations.
//!
//! The paper's VIS-enhanced benchmark variants must *compute real data*
//! so their outputs can be checked against the scalar variants (the
//! paper's §2.3.2 methodology requires VIS substitutions to be visually
//! indistinguishable). This module implements the packed data types and
//! the operations of Table 4 on plain `u64` values.
//!
//! # Lane convention
//!
//! A 64-bit VIS register holds eight 8-bit, four 16-bit, or two 32-bit
//! lanes. **Lane 0 is the least-significant lane**, which also corresponds
//! to the *lowest* memory address (loads use little-endian byte order into
//! the register). This differs from big-endian SPARC but is internally
//! consistent; only lane order, not the results of whole-image kernels,
//! is affected.
//!
//! # Example
//!
//! ```
//! use visim_isa::vis::{self, Gsr};
//!
//! // Saturating 16->8 packing through the graphics status register.
//! let gsr = Gsr { align: 0, scale: 7 };
//! let wide = vis::pack16([-5, 0, 255, 300]);
//! assert_eq!(vis::fpack16(gsr, wide), [0, 0, 255, 255]);
//! ```

/// Graphics status register: alignment offset (3 bits) and packing scale
/// factor (up to 15 supported here; real VIS uses 4 bits for `fpack16`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gsr {
    /// Byte offset used by `faligndata`.
    pub align: u8,
    /// Left-shift applied before packing in `fpack16/32`/`fpackfix`.
    pub scale: u8,
}

// ---------------------------------------------------------------------
// Packing helpers between lane arrays and u64 registers.
// ---------------------------------------------------------------------

/// Pack eight bytes (lane 0 = least significant) into a register.
pub fn pack8(lanes: [u8; 8]) -> u64 {
    u64::from_le_bytes(lanes)
}

/// Unpack a register into eight byte lanes.
pub fn unpack8(r: u64) -> [u8; 8] {
    r.to_le_bytes()
}

/// Pack four signed 16-bit lanes into a register.
pub fn pack16(lanes: [i16; 4]) -> u64 {
    let mut r = 0u64;
    for (i, &l) in lanes.iter().enumerate() {
        r |= (l as u16 as u64) << (16 * i);
    }
    r
}

/// Unpack a register into four signed 16-bit lanes.
pub fn unpack16(r: u64) -> [i16; 4] {
    [
        r as u16 as i16,
        (r >> 16) as u16 as i16,
        (r >> 32) as u16 as i16,
        (r >> 48) as u16 as i16,
    ]
}

/// Pack two signed 32-bit lanes into a register.
pub fn pack32(lanes: [i32; 2]) -> u64 {
    (lanes[0] as u32 as u64) | ((lanes[1] as u32 as u64) << 32)
}

/// Unpack a register into two signed 32-bit lanes.
pub fn unpack32(r: u64) -> [i32; 2] {
    [r as u32 as i32, (r >> 32) as u32 as i32]
}

// ---------------------------------------------------------------------
// Packed arithmetic.
// ---------------------------------------------------------------------

/// `fpadd16`: four partitioned 16-bit additions (modular).
pub fn fpadd16(a: u64, b: u64) -> u64 {
    lanewise16(a, b, |x, y| x.wrapping_add(y))
}

/// `fpsub16`: four partitioned 16-bit subtractions (modular).
pub fn fpsub16(a: u64, b: u64) -> u64 {
    lanewise16(a, b, |x, y| x.wrapping_sub(y))
}

/// `fpadd32`: two partitioned 32-bit additions (modular).
pub fn fpadd32(a: u64, b: u64) -> u64 {
    lanewise32(a, b, |x, y| x.wrapping_add(y))
}

/// `fpsub32`: two partitioned 32-bit subtractions (modular).
pub fn fpsub32(a: u64, b: u64) -> u64 {
    lanewise32(a, b, |x, y| x.wrapping_sub(y))
}

fn lanewise16(a: u64, b: u64, f: impl Fn(i16, i16) -> i16) -> u64 {
    let (a, b) = (unpack16(a), unpack16(b));
    pack16([f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])])
}

fn lanewise32(a: u64, b: u64, f: impl Fn(i32, i32) -> i32) -> u64 {
    let (a, b) = (unpack32(a), unpack32(b));
    pack32([f(a[0], b[0]), f(a[1], b[1])])
}

// ---------------------------------------------------------------------
// Packed multiplication.
// ---------------------------------------------------------------------

/// `fmul8x16`: multiply four unsigned 8-bit pixels (low 32 bits of `a`,
/// one per byte) by four signed 16-bit fixed-point lanes of `b`, rounding
/// each 24-bit product to its upper 16 bits.
pub fn fmul8x16(a: u64, b: u64) -> u64 {
    let pix = unpack8(a);
    let w = unpack16(b);
    let mut out = [0i16; 4];
    for i in 0..4 {
        out[i] = mul8x16_lane(pix[i], w[i]);
    }
    pack16(out)
}

/// [`fmul8x16`] reading its four pixels from the *upper* four bytes of
/// `a` (real VIS addresses either 32-bit register half at no extra
/// cost).
pub fn fmul8x16_hi(a: u64, b: u64) -> u64 {
    let pix = unpack8(a);
    let w = unpack16(b);
    let mut out = [0i16; 4];
    for i in 0..4 {
        out[i] = mul8x16_lane(pix[i + 4], w[i]);
    }
    pack16(out)
}

/// `fmul8x16au`: multiply four unsigned 8-bit pixels by the *same* signed
/// 16-bit coefficient (the "upper" half of a 32-bit scalar in real VIS).
pub fn fmul8x16au(a: u64, coeff: i16) -> u64 {
    let pix = unpack8(a);
    let mut out = [0i16; 4];
    for i in 0..4 {
        out[i] = mul8x16_lane(pix[i], coeff);
    }
    pack16(out)
}

/// [`fmul8x16au`] reading its pixels from the upper four bytes of `a`.
pub fn fmul8x16au_hi(a: u64, coeff: i16) -> u64 {
    let pix = unpack8(a);
    let mut out = [0i16; 4];
    for i in 0..4 {
        out[i] = mul8x16_lane(pix[i + 4], coeff);
    }
    pack16(out)
}

fn mul8x16_lane(pixel: u8, w: i16) -> i16 {
    // Round the 24-bit product to its upper 16 bits.
    (((pixel as i32) * (w as i32) + 0x80) >> 8) as i16
}

/// `fmul8sux16`: lane-wise product of the *signed upper byte* of each
/// 16-bit lane of `a` with the corresponding 16-bit lane of `b` (low 16
/// bits kept, modular).
///
/// Together with [`fmul8ulx16`] this emulates a full 16×16 multiply the
/// way VIS code does (the paper notes VIS "uses a pipelined series of two
/// 8x16 multiplies and one add" for 16-bit products); the identity
/// `fpadd16(fmul8sux16(a,b), fmul8ulx16(a,b)) == (a*b) >> 8` holds
/// lane-wise (see the property tests).
pub fn fmul8sux16(a: u64, b: u64) -> u64 {
    lanewise16(a, b, |x, y| {
        let hi = (x >> 8) as i32; // signed upper byte
        (hi * y as i32) as i16
    })
}

/// `fmul8ulx16`: lane-wise product of the *unsigned lower byte* of each
/// 16-bit lane of `a` with the 16-bit lane of `b`, arithmetic-shifted
/// right by 8 (low 16 bits kept).
pub fn fmul8ulx16(a: u64, b: u64) -> u64 {
    lanewise16(a, b, |x, y| {
        let lo = (x as u16 & 0xff) as i32; // unsigned lower byte
        ((lo * y as i32) >> 8) as i16
    })
}

/// `fmuld8sux16` on the lower two 16-bit lanes: signed-upper-byte
/// product widened to 32 bits and shifted left 8, so that adding the
/// [`fmuld8ulx16_lo`] result reconstructs the exact 32-bit product
/// (the VIS widening 16×16 emulation used by dot products).
pub fn fmuld8sux16_lo(a: u64, b: u64) -> u64 {
    let (a, b) = (unpack16(a), unpack16(b));
    pack32([muld_sux(a[0], b[0]), muld_sux(a[1], b[1])])
}

/// `fmuld8ulx16` on the lower two 16-bit lanes.
pub fn fmuld8ulx16_lo(a: u64, b: u64) -> u64 {
    let (a, b) = (unpack16(a), unpack16(b));
    pack32([muld_ulx(a[0], b[0]), muld_ulx(a[1], b[1])])
}

/// [`fmuld8sux16_lo`] on the upper two lanes (lanes 2 and 3). Real VIS
/// reaches these lanes through the second 32-bit register half; the
/// instruction count is identical.
pub fn fmuld8sux16_hi(a: u64, b: u64) -> u64 {
    let (a, b) = (unpack16(a), unpack16(b));
    pack32([muld_sux(a[2], b[2]), muld_sux(a[3], b[3])])
}

/// [`fmuld8ulx16_lo`] on the upper two lanes.
pub fn fmuld8ulx16_hi(a: u64, b: u64) -> u64 {
    let (a, b) = (unpack16(a), unpack16(b));
    pack32([muld_ulx(a[2], b[2]), muld_ulx(a[3], b[3])])
}

fn muld_sux(a: i16, b: i16) -> i32 {
    let hi = (a >> 8) as i32; // signed upper byte
    hi.wrapping_mul(b as i32) << 8
}

fn muld_ulx(a: i16, b: i16) -> i32 {
    let lo = (a as u16 & 0xff) as i32; // unsigned lower byte
    lo.wrapping_mul(b as i32)
}

/// Full 16×16→16 lane-wise multiply returning the upper 16 bits of each
/// 32-bit product (`(a*b) >> 8` truncated to 16 bits, i.e. a Q8 fixed
/// point multiply). This is the *composite* operation VIS code builds out
/// of `fmul8sux16 + fmul8ulx16 + fpadd16`; provided for reference and
/// testing.
pub fn mul16_q8(a: u64, b: u64) -> u64 {
    fpadd16(fmul8sux16(a, b), fmul8ulx16(a, b))
}

// ---------------------------------------------------------------------
// Logical operations (on the FP/VIS datapath).
// ---------------------------------------------------------------------

/// `fand`: bitwise AND.
pub fn fand(a: u64, b: u64) -> u64 {
    a & b
}

/// `for`: bitwise OR.
pub fn f_or(a: u64, b: u64) -> u64 {
    a | b
}

/// `fxor`: bitwise XOR.
pub fn fxor(a: u64, b: u64) -> u64 {
    a ^ b
}

/// `fnot`: bitwise NOT.
pub fn fnot(a: u64) -> u64 {
    !a
}

/// `fandnot`: `a & !b`.
pub fn fandnot(a: u64, b: u64) -> u64 {
    a & !b
}

// ---------------------------------------------------------------------
// Subword rearrangement: pack / expand / merge / align.
// ---------------------------------------------------------------------

/// `fpack16`: scale four 16-bit lanes left by `gsr.scale`, then saturate
/// bits `[14:7]` of each into an unsigned byte.
///
/// With `scale == 7` this is plain i16 → u8 saturation.
pub fn fpack16(gsr: Gsr, a: u64) -> [u8; 4] {
    let lanes = unpack16(a);
    let mut out = [0u8; 4];
    for i in 0..4 {
        let v = (lanes[i] as i32) << gsr.scale;
        out[i] = (v >> 7).clamp(0, 255) as u8;
    }
    out
}

/// [`fpack16`] on two registers, producing a full 8-byte register
/// (`a` supplies lanes 0-3, `b` lanes 4-7). Convenience composite used by
/// kernels that pack two halves with two `fpack16` instructions.
pub fn fpack16_pair(gsr: Gsr, a: u64, b: u64) -> u64 {
    let lo = fpack16(gsr, a);
    let hi = fpack16(gsr, b);
    pack8([lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]])
}

/// `fpackfix`: scale two 32-bit lanes left by `gsr.scale` and saturate
/// bits `[31:16]` into signed 16-bit values.
pub fn fpackfix(gsr: Gsr, a: u64) -> [i16; 2] {
    let lanes = unpack32(a);
    let mut out = [0i16; 2];
    for i in 0..2 {
        let v = (lanes[i] as i64) << gsr.scale;
        out[i] = (v >> 16).clamp(i16::MIN as i64, i16::MAX as i64) as i16;
    }
    out
}

/// `fexpand`: widen four unsigned bytes into four 16-bit lanes shifted
/// left by 4 (VIS fixed-point pixel format).
pub fn fexpand(a: [u8; 4]) -> u64 {
    pack16([
        (a[0] as i16) << 4,
        (a[1] as i16) << 4,
        (a[2] as i16) << 4,
        (a[3] as i16) << 4,
    ])
}

/// `fpmerge`: interleave two 4-byte operands into eight bytes:
/// `a0 b0 a1 b1 a2 b2 a3 b3` (lane 0 first).
pub fn fpmerge(a: [u8; 4], b: [u8; 4]) -> u64 {
    pack8([a[0], b[0], a[1], b[1], a[2], b[2], a[3], b[3]])
}

/// `falignaddr`: align `addr + offset` down to 8 bytes and return the
/// aligned address together with the GSR alignment field.
pub fn falignaddr(addr: u64, offset: i64) -> (u64, u8) {
    let ea = addr.wrapping_add_signed(offset);
    (ea & !7, (ea & 7) as u8)
}

/// `faligndata`: extract 8 bytes starting at byte offset `gsr.align` from
/// the 16-byte concatenation of `lo_addr_reg` (bytes 0-7, the lower
/// addresses) and `hi_addr_reg` (bytes 8-15).
pub fn faligndata(gsr: Gsr, lo_addr_reg: u64, hi_addr_reg: u64) -> u64 {
    let k = (gsr.align & 7) as usize;
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&lo_addr_reg.to_le_bytes());
    bytes[8..].copy_from_slice(&hi_addr_reg.to_le_bytes());
    let mut out = [0u8; 8];
    out.copy_from_slice(&bytes[k..k + 8]);
    u64::from_le_bytes(out)
}

// ---------------------------------------------------------------------
// Partitioned compares and edge masks.
// ---------------------------------------------------------------------

/// `fcmpgt16`: 4-bit mask, bit *i* set when lane *i* of `a` > lane *i*
/// of `b` (signed).
pub fn fcmpgt16(a: u64, b: u64) -> u8 {
    cmp16(a, b, |x, y| x > y)
}

/// `fcmple16`: 4-bit mask for `a <= b` lane-wise.
pub fn fcmple16(a: u64, b: u64) -> u8 {
    cmp16(a, b, |x, y| x <= y)
}

/// `fcmpeq16`: 4-bit mask for `a == b` lane-wise.
pub fn fcmpeq16(a: u64, b: u64) -> u8 {
    cmp16(a, b, |x, y| x == y)
}

/// `fcmpne16`: 4-bit mask for `a != b` lane-wise.
pub fn fcmpne16(a: u64, b: u64) -> u8 {
    cmp16(a, b, |x, y| x != y)
}

/// `fcmpgt32`: 2-bit mask for `a > b` lane-wise on 32-bit lanes.
pub fn fcmpgt32(a: u64, b: u64) -> u8 {
    let (a, b) = (unpack32(a), unpack32(b));
    (a[0] > b[0]) as u8 | (((a[1] > b[1]) as u8) << 1)
}

fn cmp16(a: u64, b: u64, f: impl Fn(i16, i16) -> bool) -> u8 {
    let (a, b) = (unpack16(a), unpack16(b));
    let mut m = 0u8;
    for i in 0..4 {
        if f(a[i], b[i]) {
            m |= 1 << i;
        }
    }
    m
}

/// `edge8`: byte-validity mask for a partial store covering `[addr, end]`.
///
/// Bits are set for the bytes of the 8-byte chunk at `addr & !7` that lie
/// within the addressed region: from `addr & 7` up to either the end of
/// the chunk or `end & 7` when `addr` and `end` fall in the same chunk.
pub fn edge8(addr: u64, end: u64) -> u8 {
    edge_mask(addr, end, 8)
}

/// `edge16`: like [`edge8`] for four 16-bit elements (4-bit mask).
pub fn edge16(addr: u64, end: u64) -> u8 {
    edge_mask(addr, end, 4)
}

/// `edge32`: like [`edge8`] for two 32-bit elements (2-bit mask).
pub fn edge32(addr: u64, end: u64) -> u8 {
    edge_mask(addr, end, 2)
}

fn edge_mask(addr: u64, end: u64, lanes: u64) -> u8 {
    let bytes_per = 8 / lanes;
    let lo = (addr & 7) / bytes_per;
    let hi = if (addr & !7) == (end & !7) {
        (end & 7) / bytes_per
    } else {
        lanes - 1
    };
    let mut m = 0u8;
    for i in lo..=hi {
        m |= 1 << i;
    }
    m
}

/// Apply a byte mask (as produced by [`edge8`] or a partitioned compare
/// expanded to bytes) to merge `new` over `old`: mask bit *i* selects the
/// new byte for lane *i*. This is the datapath of the VIS *partial store*.
pub fn partial_store_merge(old: u64, new: u64, mask: u8) -> u64 {
    let (o, n) = (unpack8(old), unpack8(new));
    let mut out = [0u8; 8];
    for i in 0..8 {
        out[i] = if mask & (1 << i) != 0 { n[i] } else { o[i] };
    }
    pack8(out)
}

/// Expand a 4-bit 16-bit-lane compare mask into the corresponding 8-bit
/// byte mask (each lane covers two bytes).
pub fn mask16_to_bytes(mask4: u8) -> u8 {
    let mut m = 0u8;
    for i in 0..4 {
        if mask4 & (1 << i) != 0 {
            m |= 0b11 << (2 * i);
        }
    }
    m
}

// ---------------------------------------------------------------------
// Special-purpose operations.
// ---------------------------------------------------------------------

/// `pdist`: sum of absolute differences of the eight byte lanes of `a`
/// and `b`, accumulated into `acc`.
pub fn pdist(a: u64, b: u64, acc: u64) -> u64 {
    let (a, b) = (unpack8(a), unpack8(b));
    let mut s = 0u64;
    for i in 0..8 {
        s += (a[i] as i32 - b[i] as i32).unsigned_abs() as u64;
    }
    acc + s
}

/// `array8`: convert x/y/z fixed-point coordinates into a blocked byte
/// address (used by 3-D rendering for cache locality). Implemented as the
/// standard bit-interleave of the integer parts; our 2-D image workloads
/// do not use it (matching the paper, whose benchmarks also never use
/// `array`), but it is exercised by tests for completeness.
pub fn array8(x: u64, y: u64, z: u64) -> u64 {
    let (xi, yi, zi) = (x >> 11 & 0x7ff, y >> 11 & 0x7ff, z >> 11 & 0x7ff);
    // Lower blocking: 2 bits of each coordinate interleaved, then middle
    // 4 bits, then the upper bits concatenated.
    let low = (xi & 3) | (yi & 3) << 2 | (zi & 1) << 4;
    let mid = (xi >> 2 & 0xf) << 5 | (yi >> 2 & 0xf) << 9 | (zi >> 1 & 0xf) << 13;
    let high = (xi >> 6) << 17 | (yi >> 6) << 22 | (zi >> 5) << 27;
    low | mid | high
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let lanes = [-1i16, 0, 32767, -32768];
        assert_eq!(unpack16(pack16(lanes)), lanes);
        let lanes32 = [i32::MIN, i32::MAX];
        assert_eq!(unpack32(pack32(lanes32)), lanes32);
        let bytes = [1u8, 2, 3, 4, 5, 250, 251, 255];
        assert_eq!(unpack8(pack8(bytes)), bytes);
    }

    #[test]
    fn packed_add_sub_wraps() {
        let a = pack16([i16::MAX, 1, -1, 100]);
        let b = pack16([1, 1, 1, -100]);
        assert_eq!(unpack16(fpadd16(a, b)), [i16::MIN, 2, 0, 0]);
        assert_eq!(unpack16(fpsub16(a, b)), [i16::MAX - 1, 0, -2, 200]);
        let a32 = pack32([i32::MAX, -5]);
        let b32 = pack32([1, 5]);
        assert_eq!(unpack32(fpadd32(a32, b32)), [i32::MIN, 0]);
        assert_eq!(unpack32(fpsub32(a32, b32)), [i32::MAX - 1, -10]);
    }

    #[test]
    fn fmul8x16_rounds_to_upper_16() {
        // 255 * 256 = 65280; (65280 + 128) >> 8 = 255.
        let pix = pack8([255, 0, 128, 1, 0, 0, 0, 0]);
        let w = pack16([256, 256, 256, 256]);
        assert_eq!(unpack16(fmul8x16(pix, w)), [255, 0, 128, 1]);
    }

    #[test]
    fn fmul8x16au_broadcasts_coefficient() {
        let pix = pack8([10, 20, 30, 40, 0, 0, 0, 0]);
        let got = unpack16(fmul8x16au(pix, 512));
        assert_eq!(got, [20, 40, 60, 80]);
    }

    #[test]
    fn mul16_q8_identity() {
        for (a, b) in [(300i16, 77i16), (-1234, 89), (32767, -32768), (-256, -256)] {
            let ra = pack16([a; 4]);
            let rb = pack16([b; 4]);
            let want = ((a as i32 * b as i32) >> 8) as i16;
            assert_eq!(unpack16(mul16_q8(ra, rb)), [want; 4], "{a} * {b}");
        }
    }

    #[test]
    fn fpack16_saturates() {
        let gsr = Gsr { align: 0, scale: 7 };
        assert_eq!(fpack16(gsr, pack16([-1, 256, 255, 0])), [0, 255, 255, 0]);
        // scale=3 divides by 16 (the fexpand format).
        let gsr3 = Gsr { align: 0, scale: 3 };
        assert_eq!(
            fpack16(gsr3, pack16([16 * 16, 255 * 16, 256 * 16, -16])),
            [16, 255, 255, 0]
        );
    }

    #[test]
    fn fexpand_then_pack_is_identity() {
        let gsr = Gsr { align: 0, scale: 3 };
        for v in [0u8, 1, 127, 128, 254, 255] {
            let wide = fexpand([v; 4]);
            assert_eq!(fpack16(gsr, wide), [v; 4]);
        }
    }

    #[test]
    fn fpackfix_saturates_32_to_16() {
        let gsr = Gsr {
            align: 0,
            scale: 16,
        };
        assert_eq!(fpackfix(gsr, pack32([40000, -40000])), [i16::MAX, i16::MIN]);
        assert_eq!(fpackfix(gsr, pack32([1234, -1234])), [1234, -1234]);
    }

    #[test]
    fn fpmerge_interleaves() {
        let r = fpmerge([1, 2, 3, 4], [5, 6, 7, 8]);
        assert_eq!(unpack8(r), [1, 5, 2, 6, 3, 7, 4, 8]);
    }

    #[test]
    fn faligndata_extracts_window() {
        let lo = pack8([0, 1, 2, 3, 4, 5, 6, 7]);
        let hi = pack8([8, 9, 10, 11, 12, 13, 14, 15]);
        for k in 0u8..8 {
            let gsr = Gsr { align: k, scale: 0 };
            let got = unpack8(faligndata(gsr, lo, hi));
            let want: Vec<u8> = (k..k + 8).collect();
            assert_eq!(&got[..], &want[..], "align {k}");
        }
    }

    #[test]
    fn falignaddr_splits_address() {
        let (base, off) = falignaddr(0x1003, 2);
        assert_eq!(base, 0x1000);
        assert_eq!(off, 5);
        let (base, off) = falignaddr(0x1008, 0);
        assert_eq!(base, 0x1008);
        assert_eq!(off, 0);
    }

    #[test]
    fn partitioned_compares() {
        let a = pack16([1, 5, -3, 7]);
        let b = pack16([2, 5, -4, 0]);
        assert_eq!(fcmpgt16(a, b), 0b1100);
        assert_eq!(fcmple16(a, b), 0b0011);
        assert_eq!(fcmpeq16(a, b), 0b0010);
        assert_eq!(fcmpne16(a, b), 0b1101);
        assert_eq!(fcmpgt32(pack32([5, -1]), pack32([4, 0])), 0b01);
    }

    #[test]
    fn edge_masks() {
        // Aligned start, far end: full mask.
        assert_eq!(edge8(0x1000, 0x2000), 0xff);
        // Start at byte 3 of the chunk.
        assert_eq!(edge8(0x1003, 0x2000), 0b1111_1000);
        // Start and end inside the same chunk (bytes 2..=5).
        assert_eq!(edge8(0x1002, 0x1005), 0b0011_1100);
        // 16-bit lanes: start at element 1 of 4.
        assert_eq!(edge16(0x1002, 0x2000), 0b1110);
        // 32-bit lanes.
        assert_eq!(edge32(0x1004, 0x2000), 0b10);
    }

    #[test]
    fn partial_store_merges_bytes() {
        let old = pack8([0xaa; 8]);
        let new = pack8([1, 2, 3, 4, 5, 6, 7, 8]);
        let r = unpack8(partial_store_merge(old, new, 0b0000_1010));
        assert_eq!(r, [0xaa, 2, 0xaa, 4, 0xaa, 0xaa, 0xaa, 0xaa]);
    }

    #[test]
    fn mask16_expansion() {
        assert_eq!(mask16_to_bytes(0b1010), 0b1100_1100);
        assert_eq!(mask16_to_bytes(0b0001), 0b0000_0011);
    }

    #[test]
    fn pdist_accumulates_sad() {
        let a = pack8([10, 20, 30, 40, 50, 60, 70, 80]);
        let b = pack8([12, 18, 30, 45, 50, 0, 70, 90]);
        // |2|+|2|+0+|5|+0+|60|+0+|10| = 79
        assert_eq!(pdist(a, b, 0), 79);
        assert_eq!(pdist(a, b, 100), 179);
        assert_eq!(pdist(a, a, 7), 7);
    }

    #[test]
    fn logicals() {
        assert_eq!(fand(0xf0f0, 0xff00), 0xf000);
        assert_eq!(f_or(0xf0f0, 0x0f00), 0xfff0);
        assert_eq!(fxor(0xffff, 0x00ff), 0xff00);
        assert_eq!(fnot(0), u64::MAX);
        assert_eq!(fandnot(0xff, 0x0f), 0xf0);
    }

    #[test]
    fn array8_blocks_nearby_coordinates_together() {
        // Adjacent x coordinates map to adjacent blocked addresses.
        let a = array8(0 << 11, 0, 0);
        let b = array8(1 << 11, 0, 0);
        assert_ne!(a, b);
        assert!(b - a <= 2, "nearby coords stay in the same block");
    }
}
