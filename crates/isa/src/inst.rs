//! The dynamic instruction record exchanged between the workload emitter
//! (`visim-trace`) and the pipeline models (`visim-cpu`).

use crate::op::Op;

/// A virtual register name.
///
/// The emitter allocates a fresh register for every produced value
/// (SSA-like), which gives the out-of-order model perfect renaming and
/// lets the in-order model track true (read-after-write) dependences.
/// [`Reg::NONE`] marks an absent operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// Sentinel for "no register".
    pub const NONE: Reg = Reg(u32::MAX);

    /// True unless this is the [`Reg::NONE`] sentinel.
    pub fn is_some(self) -> bool {
        self != Reg::NONE
    }
}

/// Flavour of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Ordinary load.
    Load,
    /// Ordinary store.
    Store,
    /// Non-binding prefetch into L1 (dropped if no MSHR is free).
    Prefetch,
    /// VIS partial store (mask-selected bytes of a 64-bit line chunk).
    PartialStore,
    /// VIS block load: 64 bytes, bypassing cache allocation.
    BlockLoad,
    /// VIS block store: 64 bytes, bypassing cache allocation.
    BlockStore,
}

impl MemKind {
    /// True for store-class references.
    pub fn is_store(self) -> bool {
        matches!(
            self,
            MemKind::Store | MemKind::PartialStore | MemKind::BlockStore
        )
    }

    /// True for references that should not allocate in the caches.
    pub fn bypasses_cache(self) -> bool {
        matches!(self, MemKind::BlockLoad | MemKind::BlockStore)
    }
}

/// A memory reference: virtual address, access size and flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Simulated virtual address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, 8 or 64 for block transfers).
    pub size: u8,
    /// Load/store/prefetch flavour.
    pub kind: MemKind,
}

/// Control-transfer flavour, used by the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional branch predicted by the bimodal agree predictor.
    Cond,
    /// Unconditional direct jump (always predicted correctly).
    Jump,
    /// Call: pushes the return-address stack.
    Call,
    /// Return: predicted by the return-address stack.
    Ret,
}

/// Branch metadata attached to control-transfer instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Flavour of control transfer.
    pub kind: BranchKind,
    /// Actual outcome (trace-driven): taken or not.
    pub taken: bool,
    /// True if the target is "backward" (loop-closing); used as the
    /// static bias bit by the agree predictor.
    pub backward: bool,
    /// Call/return linkage token: a call pushes its own `pc` on the
    /// return-address stack, and the matching return carries the same
    /// value here so RAS mispredictions can be detected. Zero for
    /// ordinary branches.
    pub target: u64,
}

impl BranchInfo {
    /// A conditional branch with the given outcome and direction.
    pub fn cond(taken: bool, backward: bool) -> Self {
        BranchInfo {
            kind: BranchKind::Cond,
            taken,
            backward,
            target: 0,
        }
    }

    /// A call/return pair linked by `target` (see [`BranchInfo::target`]).
    pub fn linkage(kind: BranchKind, target: u64) -> Self {
        debug_assert!(matches!(kind, BranchKind::Call | BranchKind::Ret));
        BranchInfo {
            kind,
            taken: true,
            backward: false,
            target,
        }
    }
}

/// One dynamic instruction.
///
/// `pc` is a stable identifier of the *static* instruction site (derived
/// by the emitter from the Rust call site), so that branch-predictor and
/// per-site statistics behave as they would on a real instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Operation kind (determines unit, latency and category).
    pub op: Op,
    /// Static-site identifier (plays the role of the program counter).
    pub pc: u64,
    /// Destination register, or [`Reg::NONE`].
    pub dst: Reg,
    /// Source registers; unused slots are [`Reg::NONE`].
    pub srcs: [Reg; 3],
    /// Memory reference for loads/stores/prefetches.
    pub mem: Option<MemRef>,
    /// Branch metadata for control transfers.
    pub branch: Option<BranchInfo>,
}

impl Inst {
    /// A plain computational instruction.
    pub fn compute(op: Op, pc: u64, dst: Reg, srcs: [Reg; 3]) -> Self {
        debug_assert!(!op.is_mem() && !op.is_branch());
        Inst {
            op,
            pc,
            dst,
            srcs,
            mem: None,
            branch: None,
        }
    }

    /// A memory instruction. `op` must be `Load`, `Store`, or `Prefetch`.
    pub fn memory(op: Op, pc: u64, dst: Reg, srcs: [Reg; 3], mem: MemRef) -> Self {
        debug_assert!(op.is_mem());
        debug_assert_eq!(op == Op::Store, mem.kind.is_store());
        Inst {
            op,
            pc,
            dst,
            srcs,
            mem: Some(mem),
            branch: None,
        }
    }

    /// A control-transfer instruction.
    pub fn control(op: Op, pc: u64, srcs: [Reg; 3], branch: BranchInfo) -> Self {
        debug_assert!(op.is_branch());
        Inst {
            op,
            pc,
            dst: Reg::NONE,
            srcs,
            mem: None,
            branch: Some(branch),
        }
    }

    /// Iterator over the *present* source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().copied().filter(|r| r.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_none_is_not_some() {
        assert!(!Reg::NONE.is_some());
        assert!(Reg(0).is_some());
        assert!(Reg(123).is_some());
    }

    #[test]
    fn sources_skips_none() {
        let i = Inst::compute(Op::IntAlu, 1, Reg(5), [Reg(1), Reg::NONE, Reg(2)]);
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn memkind_predicates() {
        assert!(MemKind::Store.is_store());
        assert!(MemKind::PartialStore.is_store());
        assert!(MemKind::BlockStore.is_store());
        assert!(!MemKind::Load.is_store());
        assert!(!MemKind::Prefetch.is_store());
        assert!(MemKind::BlockLoad.bypasses_cache());
        assert!(MemKind::BlockStore.bypasses_cache());
        assert!(!MemKind::Store.bypasses_cache());
    }

    #[test]
    fn constructors_populate_fields() {
        let m = MemRef {
            addr: 0x1000,
            size: 8,
            kind: MemKind::Load,
        };
        let i = Inst::memory(Op::Load, 7, Reg(3), [Reg(1), Reg::NONE, Reg::NONE], m);
        assert_eq!(i.mem, Some(m));
        assert_eq!(i.dst, Reg(3));

        let b = BranchInfo::cond(true, true);
        let i = Inst::control(Op::Branch, 9, [Reg(2), Reg::NONE, Reg::NONE], b);
        assert_eq!(i.branch, Some(b));
        assert_eq!(i.dst, Reg::NONE);
    }
}
