//! Operation kinds, functional-unit classes and latencies.
//!
//! The latency and functional-unit assignments follow Table 2 of the paper
//! (default parameters chosen after the Alpha 21264 / UltraSPARC-II):
//!
//! * integer add/logic 1 cycle, multiply 7, divide 12;
//! * default floating point 4 cycles, FP moves/converts 4, FP divide 12
//!   (the only non-pipelined unit);
//! * default VIS 1 cycle; VIS 8-bit loads / multiplies / `pdist` 1/3/3;
//! * address generation 1 cycle (folded into the memory instruction, which
//!   occupies one of the two address-generation units).

/// Functional-unit class an operation executes on.
///
/// The counts per class on the default machine (Table 2) are: 2 integer
/// ALUs, 2 floating-point units, 2 address-generation units, 1 VIS
/// multiplier, 1 VIS adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Integer arithmetic/logical unit (also resolves branches).
    IntAlu,
    /// Floating-point unit.
    Fp,
    /// Address-generation unit; every load/store/prefetch occupies one.
    Agu,
    /// The single VIS adder (partitioned add/sub, logicals, align, edge).
    VisAdder,
    /// The single VIS multiplier (packed multiplies, pack, compares,
    /// `pdist`, merge/expand).
    VisMul,
}

/// Instruction categories for the paper's Figure 2 instruction-mix plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstCat {
    /// Scalar ALU/FPU computation ("FU" in Figure 2).
    Fu,
    /// Control transfer.
    Branch,
    /// Loads, stores and prefetches.
    Memory,
    /// Any VIS operation.
    Vis,
}

/// The dynamic operation kind of an instruction.
///
/// This is deliberately a *timing-level* classification: functionally
/// distinct operations that are indistinguishable to the pipeline (e.g.
/// `add` vs `xor`) share a kind. The VIS kinds are split by
/// functional-unit path and latency, and finely enough to reconstruct the
/// paper's "subword rearrangement and alignment overhead" statistic
/// (§3.2.3: ~41% of VIS instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer add/sub/logic/shift/compare/sethi. 1 cycle.
    IntAlu,
    /// Integer multiply. 7 cycles.
    IntMul,
    /// Integer divide. 12 cycles.
    IntDiv,
    /// FP add/sub/mul (default FP, 4 cycles).
    FpOp,
    /// FP register move. 4 cycles.
    FpMove,
    /// FP convert. 4 cycles.
    FpConv,
    /// FP divide. 12 cycles, non-pipelined.
    FpDiv,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// Call (pushes the return-address stack).
    Call,
    /// Return (pops the return-address stack).
    Ret,
    /// Scalar load (any width), including VIS short/block loads.
    Load,
    /// Scalar store (any width), including VIS partial/short/block stores.
    Store,
    /// Non-binding software prefetch into the L1 cache.
    Prefetch,
    /// VIS partitioned add/subtract (`fpadd16/32`, `fpsub16/32`).
    VisAdd,
    /// VIS logical on the FP datapath (`fand`, `for`, `fxor`, ...).
    VisLogic,
    /// `falignaddr` / `faligndata` subword realignment.
    VisAlign,
    /// `edge8/16/32` boundary-mask generation.
    VisEdge,
    /// Partitioned compare (`fcmpgt16`, `fcmple32`, ...).
    VisCmp,
    /// Packed multiply (`fmul8x16` family). 3 cycles.
    VisMul,
    /// `fpack16/32`, `fpackfix` data packing with saturation.
    VisPack,
    /// `fexpand` data expansion.
    VisExpand,
    /// `fpmerge` byte interleave.
    VisMerge,
    /// `pdist` pixel-distance (sum of absolute differences). 3 cycles.
    VisPdist,
    /// `array8/16/32` blocked-address conversion.
    VisArray,
    /// Read/write the graphics status register.
    VisGsr,
}

/// Per-machine operation latencies, in cycles.
///
/// [`LatencyTable::default`] reproduces Table 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTable {
    /// Default integer / address-generation latency.
    pub int_alu: u32,
    /// Integer multiply latency.
    pub int_mul: u32,
    /// Integer divide latency.
    pub int_div: u32,
    /// Default floating-point latency.
    pub fp_default: u32,
    /// FP move / convert latency.
    pub fp_move: u32,
    /// FP divide latency (non-pipelined).
    pub fp_div: u32,
    /// Default VIS latency.
    pub vis_default: u32,
    /// VIS packed-multiply latency.
    pub vis_mul: u32,
    /// VIS `pdist` latency.
    pub vis_pdist: u32,
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 7,
            int_div: 12,
            fp_default: 4,
            fp_move: 4,
            fp_div: 12,
            vis_default: 1,
            vis_mul: 3,
            vis_pdist: 3,
        }
    }
}

impl Op {
    /// Functional unit this operation executes on.
    ///
    /// Memory operations return [`FuKind::Agu`]; their cache access is
    /// modelled separately by the memory system. Branch-class operations
    /// resolve on an integer ALU, as on the UltraSPARC/Alpha pipelines.
    pub fn fu(self) -> FuKind {
        use Op::*;
        match self {
            IntAlu | IntMul | IntDiv | Branch | Jump | Call | Ret => FuKind::IntAlu,
            FpOp | FpMove | FpConv | FpDiv => FuKind::Fp,
            Load | Store | Prefetch => FuKind::Agu,
            VisAdd | VisLogic | VisAlign | VisEdge | VisArray | VisGsr => FuKind::VisAdder,
            VisCmp | VisMul | VisPack | VisExpand | VisMerge | VisPdist => FuKind::VisMul,
        }
    }

    /// Execution latency of this operation under `lat`.
    ///
    /// For memory operations this is the address-generation latency only;
    /// cache access time is added by the memory hierarchy model.
    pub fn latency(self, lat: &LatencyTable) -> u32 {
        use Op::*;
        match self {
            IntAlu | Branch | Jump | Call | Ret => lat.int_alu,
            IntMul => lat.int_mul,
            IntDiv => lat.int_div,
            FpOp => lat.fp_default,
            FpMove | FpConv => lat.fp_move,
            FpDiv => lat.fp_div,
            Load | Store | Prefetch => lat.int_alu,
            VisMul => lat.vis_mul,
            VisPdist => lat.vis_pdist,
            VisAdd | VisLogic | VisAlign | VisEdge | VisCmp | VisPack | VisExpand | VisMerge
            | VisArray | VisGsr => lat.vis_default,
        }
    }

    /// Whether the operation's functional unit is pipelined.
    ///
    /// All units are fully pipelined except floating-point divide
    /// (Table 2).
    pub fn pipelined(self) -> bool {
        !matches!(self, Op::FpDiv)
    }

    /// Instruction category for instruction-mix accounting (Figure 2).
    pub fn category(self) -> InstCat {
        use Op::*;
        match self {
            IntAlu | IntMul | IntDiv | FpOp | FpMove | FpConv | FpDiv => InstCat::Fu,
            Branch | Jump | Call | Ret => InstCat::Branch,
            Load | Store | Prefetch => InstCat::Memory,
            VisAdd | VisLogic | VisAlign | VisEdge | VisCmp | VisMul | VisPack | VisExpand
            | VisMerge | VisPdist | VisArray | VisGsr => InstCat::Vis,
        }
    }

    /// True for VIS *subword rearrangement / alignment* operations, the
    /// overhead class the paper quantifies in §3.2.3.
    pub fn is_vis_overhead(self) -> bool {
        matches!(
            self,
            Op::VisAlign | Op::VisPack | Op::VisExpand | Op::VisMerge | Op::VisGsr
        )
    }

    /// True for any VIS operation.
    pub fn is_vis(self) -> bool {
        self.category() == InstCat::Vis
    }

    /// True for loads, stores and prefetches.
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store | Op::Prefetch)
    }

    /// True for control-transfer operations.
    pub fn is_branch(self) -> bool {
        self.category() == InstCat::Branch
    }

    /// Stable lowercase name, used as the event label in pipeline
    /// traces and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Op::IntAlu => "int_alu",
            Op::IntMul => "int_mul",
            Op::IntDiv => "int_div",
            Op::FpOp => "fp_op",
            Op::FpMove => "fp_move",
            Op::FpConv => "fp_conv",
            Op::FpDiv => "fp_div",
            Op::Branch => "branch",
            Op::Jump => "jump",
            Op::Call => "call",
            Op::Ret => "ret",
            Op::Load => "load",
            Op::Store => "store",
            Op::Prefetch => "prefetch",
            Op::VisAdd => "vis_add",
            Op::VisLogic => "vis_logic",
            Op::VisAlign => "vis_align",
            Op::VisEdge => "vis_edge",
            Op::VisCmp => "vis_cmp",
            Op::VisMul => "vis_mul",
            Op::VisPack => "vis_pack",
            Op::VisExpand => "vis_expand",
            Op::VisMerge => "vis_merge",
            Op::VisPdist => "vis_pdist",
            Op::VisArray => "vis_array",
            Op::VisGsr => "vis_gsr",
        }
    }

    /// All operation kinds, for table generation and exhaustive tests.
    pub fn all() -> &'static [Op] {
        use Op::*;
        &[
            IntAlu, IntMul, IntDiv, FpOp, FpMove, FpConv, FpDiv, Branch, Jump, Call, Ret, Load,
            Store, Prefetch, VisAdd, VisLogic, VisAlign, VisEdge, VisCmp, VisMul, VisPack,
            VisExpand, VisMerge, VisPdist, VisArray, VisGsr,
        ]
    }

    /// Human-readable VIS classification row, mirroring Table 4 of the
    /// paper; `None` for non-VIS operations.
    pub fn vis_class(self) -> Option<&'static str> {
        use Op::*;
        Some(match self {
            VisAdd => "packed arithmetic",
            VisMul => "packed multiplication",
            VisLogic => "logical operations",
            VisPack | VisExpand | VisMerge => "data packing and expansion",
            VisAlign => "data alignment",
            VisCmp => "partitioned compares",
            VisEdge => "mask generation for edge effects",
            VisPdist => "pixel distance computation",
            VisArray => "array address conversion",
            VisGsr => "graphics status register access",
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_match_table_2() {
        let lat = LatencyTable::default();
        assert_eq!(Op::IntAlu.latency(&lat), 1);
        assert_eq!(Op::IntMul.latency(&lat), 7);
        assert_eq!(Op::IntDiv.latency(&lat), 12);
        assert_eq!(Op::FpOp.latency(&lat), 4);
        assert_eq!(Op::FpMove.latency(&lat), 4);
        assert_eq!(Op::FpConv.latency(&lat), 4);
        assert_eq!(Op::FpDiv.latency(&lat), 12);
        assert_eq!(Op::VisAdd.latency(&lat), 1);
        assert_eq!(Op::VisMul.latency(&lat), 3);
        assert_eq!(Op::VisPdist.latency(&lat), 3);
        assert_eq!(Op::Load.latency(&lat), 1, "AGU latency");
    }

    #[test]
    fn only_fp_divide_is_unpipelined() {
        for &op in Op::all() {
            assert_eq!(op.pipelined(), op != Op::FpDiv, "{op:?}");
        }
    }

    #[test]
    fn categories_are_consistent_with_predicates() {
        for &op in Op::all() {
            match op.category() {
                InstCat::Vis => assert!(op.is_vis()),
                InstCat::Memory => assert!(op.is_mem()),
                InstCat::Branch => assert!(op.is_branch()),
                InstCat::Fu => {
                    assert!(!op.is_vis() && !op.is_mem() && !op.is_branch());
                }
            }
        }
    }

    #[test]
    fn vis_ops_execute_on_vis_units_and_have_a_table4_class() {
        for &op in Op::all() {
            if op.is_vis() {
                assert!(
                    matches!(op.fu(), FuKind::VisAdder | FuKind::VisMul),
                    "{op:?}"
                );
                assert!(op.vis_class().is_some(), "{op:?}");
            } else {
                assert!(op.vis_class().is_none(), "{op:?}");
            }
        }
    }

    #[test]
    fn overhead_ops_are_vis() {
        for &op in Op::all() {
            if op.is_vis_overhead() {
                assert!(op.is_vis());
            }
        }
    }

    #[test]
    fn mem_ops_use_agu() {
        assert_eq!(Op::Load.fu(), FuKind::Agu);
        assert_eq!(Op::Store.fu(), FuKind::Agu);
        assert_eq!(Op::Prefetch.fu(), FuKind::Agu);
    }

    #[test]
    fn pdist_and_packed_multiply_share_the_vis_multiplier() {
        assert_eq!(Op::VisPdist.fu(), FuKind::VisMul);
        assert_eq!(Op::VisMul.fu(), FuKind::VisMul);
        assert_eq!(Op::VisAdd.fu(), FuKind::VisAdder);
    }
}
