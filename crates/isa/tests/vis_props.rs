//! Property-based tests for the VIS packed-operation semantics: every
//! packed operation must agree with a lane-wise scalar model.

use visim_isa::vis::{self, Gsr};
use visim_util::prop::{self, Config};
use visim_util::{prop_assert, prop_assert_eq};

fn i16x4(rng: &mut visim_util::Rng) -> [i16; 4] {
    rng.array(|r| r.i16())
}

#[test]
fn fpadd16_matches_scalar() {
    prop::check(
        Config::default(),
        |rng| (i16x4(rng), i16x4(rng)),
        |&(a, b)| {
            let r = vis::unpack16(vis::fpadd16(vis::pack16(a), vis::pack16(b)));
            for i in 0..4 {
                prop_assert_eq!(r[i], a[i].wrapping_add(b[i]));
            }
            Ok(())
        },
    );
}

#[test]
fn fpsub32_matches_scalar() {
    prop::check(
        Config::default(),
        |rng| {
            (
                rng.array::<2, i32>(|r| r.i32()),
                rng.array::<2, i32>(|r| r.i32()),
            )
        },
        |&(a, b)| {
            let r = vis::unpack32(vis::fpsub32(vis::pack32(a), vis::pack32(b)));
            for i in 0..2 {
                prop_assert_eq!(r[i], a[i].wrapping_sub(b[i]));
            }
            Ok(())
        },
    );
}

/// The canonical VIS 16x16 emulation sequence (two 8x16 multiplies and
/// one packed add) must equal the truncated Q8 product lane-wise.
#[test]
fn mul16_emulation_identity() {
    prop::check(
        Config::default(),
        |rng| (i16x4(rng), i16x4(rng)),
        |&(a, b)| {
            let ra = vis::pack16(a);
            let rb = vis::pack16(b);
            let lhs = vis::unpack16(vis::fpadd16(
                vis::fmul8sux16(ra, rb),
                vis::fmul8ulx16(ra, rb),
            ));
            for i in 0..4 {
                let want = ((a[i] as i32 * b[i] as i32) >> 8) as i16;
                prop_assert_eq!(lhs[i], want);
            }
            Ok(())
        },
    );
}

#[test]
fn fpack16_saturates_to_byte_range() {
    prop::check(
        Config::default(),
        |rng| (i16x4(rng), rng.gen_range(0u8..8)),
        |&(lanes, scale)| {
            if scale >= 8 {
                return Ok(()); // out of the generator's range (shrinker artifact)
            }
            let gsr = Gsr { align: 0, scale };
            let out = vis::fpack16(gsr, vis::pack16(lanes));
            for i in 0..4 {
                let want = (((lanes[i] as i32) << scale) >> 7).clamp(0, 255) as u8;
                prop_assert_eq!(out[i], want);
            }
            Ok(())
        },
    );
}

/// fexpand followed by fpack16 at scale 3 is the identity on bytes.
#[test]
fn expand_pack_identity() {
    prop::check(
        Config::default(),
        |rng| rng.array::<4, u8>(|r| r.u8()),
        |&bytes| {
            let gsr = Gsr { align: 0, scale: 3 };
            prop_assert_eq!(vis::fpack16(gsr, vis::fexpand(bytes)), bytes);
            Ok(())
        },
    );
}

/// faligndata with align 0 returns its first operand; align k shifts
/// bytes down by k and pulls in k bytes from the second operand.
#[test]
fn faligndata_window() {
    prop::check(
        Config::default(),
        |rng| (rng.u64(), rng.u64(), rng.gen_range(0u8..8)),
        |&(lo, hi, k)| {
            if k >= 8 {
                return Ok(());
            }
            let gsr = Gsr { align: k, scale: 0 };
            let got = vis::unpack8(vis::faligndata(gsr, lo, hi));
            let l = vis::unpack8(lo);
            let h = vis::unpack8(hi);
            for (i, &g) in got.iter().enumerate() {
                let j = i + k as usize;
                let want = if j < 8 { l[j] } else { h[j - 8] };
                prop_assert_eq!(g, want);
            }
            Ok(())
        },
    );
}

/// pdist equals the scalar sum of absolute differences and is
/// symmetric in its byte operands.
#[test]
fn pdist_matches_scalar() {
    prop::check(
        Config::default(),
        |rng| {
            (
                rng.array::<8, u8>(|r| r.u8()),
                rng.array::<8, u8>(|r| r.u8()),
                rng.gen_range(0u64..1 << 40),
            )
        },
        |&(a, b, acc)| {
            let ra = vis::pack8(a);
            let rb = vis::pack8(b);
            let want: u64 = (0..8)
                .map(|i| (a[i] as i32 - b[i] as i32).unsigned_abs() as u64)
                .sum();
            prop_assert_eq!(vis::pdist(ra, rb, acc), acc + want);
            prop_assert_eq!(vis::pdist(ra, rb, 0), vis::pdist(rb, ra, 0));
            Ok(())
        },
    );
}

/// Compare masks partition: gt and le are complementary, eq and ne are
/// complementary, and eq implies le.
#[test]
fn compare_mask_laws() {
    prop::check(
        Config::default(),
        |rng| (i16x4(rng), i16x4(rng)),
        |&(a, b)| {
            let (ra, rb) = (vis::pack16(a), vis::pack16(b));
            let gt = vis::fcmpgt16(ra, rb);
            let le = vis::fcmple16(ra, rb);
            let eq = vis::fcmpeq16(ra, rb);
            let ne = vis::fcmpne16(ra, rb);
            prop_assert_eq!(gt ^ le, 0b1111);
            prop_assert_eq!(eq ^ ne, 0b1111);
            prop_assert_eq!(eq & gt, 0);
            Ok(())
        },
    );
}

/// A partial store with a full mask writes everything; with an empty
/// mask it writes nothing; and masks compose disjointly.
#[test]
fn partial_store_laws() {
    prop::check(
        Config::default(),
        |rng| (rng.u64(), rng.u64(), rng.u8()),
        |&(old, new, m)| {
            prop_assert_eq!(vis::partial_store_merge(old, new, 0xff), new);
            prop_assert_eq!(vis::partial_store_merge(old, new, 0), old);
            let once = vis::partial_store_merge(old, new, m);
            let twice = vis::partial_store_merge(once, new, m);
            prop_assert_eq!(once, twice, "partial store is idempotent");
            Ok(())
        },
    );
}

/// edge8 masks are contiguous runs of set bits and never empty.
#[test]
fn edge8_is_contiguous() {
    prop::check(
        Config::default(),
        |rng| (rng.u64(), rng.gen_range(1u64..4096)),
        |&(addr, len)| {
            if len == 0 {
                return Ok(());
            }
            let end = addr.wrapping_add(len - 1);
            if end < addr {
                return Ok(()); // wrapped: skip
            }
            let m = vis::edge8(addr, end);
            prop_assert!(m != 0);
            // A contiguous run satisfies: m | (m-1) | ... has no "gaps":
            // x & (x + lowest_set) has the same high bits.
            let low = m.trailing_zeros();
            let run = (m as u16) >> low;
            prop_assert_eq!(run & (run + 1), 0, "mask {:#010b} not contiguous", m);
            Ok(())
        },
    );
}

/// Loading eight bytes little-endian and realigning reproduces an
/// unaligned load: the memcpy-with-faligndata identity kernels rely
/// on this.
#[test]
fn align_pipeline_equals_unaligned_load() {
    prop::check(
        Config::default(),
        |rng| (rng.array::<16, u8>(|r| r.u8()), rng.gen_range(0usize..8)),
        |&(bytes, k)| {
            if k >= 8 {
                return Ok(());
            }
            let lo = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            let hi = u64::from_le_bytes(bytes[8..].try_into().unwrap());
            let gsr = Gsr {
                align: k as u8,
                scale: 0,
            };
            let got = vis::faligndata(gsr, lo, hi);
            let want = u64::from_le_bytes(bytes[k..k + 8].try_into().unwrap());
            prop_assert_eq!(got, want);
            Ok(())
        },
    );
}

/// The widening 16x16 emulation is EXACT: fmuld8sux16 + fmuld8ulx16
/// reconstructs the full 32-bit product lane-wise.
#[test]
fn widening_mul_identity() {
    prop::check(
        Config::default(),
        |rng| (i16x4(rng), i16x4(rng)),
        |&(a, b)| {
            let (ra, rb) = (vis::pack16(a), vis::pack16(b));
            let lo = vis::unpack32(vis::fpadd32(
                vis::fmuld8sux16_lo(ra, rb),
                vis::fmuld8ulx16_lo(ra, rb),
            ));
            let hi = vis::unpack32(vis::fpadd32(
                vis::fmuld8sux16_hi(ra, rb),
                vis::fmuld8ulx16_hi(ra, rb),
            ));
            for i in 0..2 {
                prop_assert_eq!(lo[i], a[i] as i32 * b[i] as i32);
                prop_assert_eq!(hi[i], a[i + 2] as i32 * b[i + 2] as i32);
            }
            Ok(())
        },
    );
}
