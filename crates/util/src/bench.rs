//! A wall-clock microbenchmark runner (the workspace's `criterion`
//! substitute) for `harness = false` bench targets.
//!
//! Each benchmark is auto-calibrated to a target measurement time, then
//! sampled in batches; the report prints mean, min and max ns/iter. The
//! point is regression *visibility* with zero dependencies, not
//! statistical rigour — EXPERIMENTS.md records indicative numbers only.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runner state: prints a header once and a row per benchmark.
#[derive(Debug)]
pub struct Runner {
    target: Duration,
    samples: u32,
    printed_header: bool,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner with the default budget (`VISIM_BENCH_MS` overrides the
    /// per-benchmark measurement time; default 300 ms, 12 samples).
    pub fn new() -> Self {
        let ms = std::env::var("VISIM_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Runner {
            target: Duration::from_millis(ms),
            samples: 12,
            printed_header: false,
        }
    }

    /// Measure `f`, printing one result row.
    pub fn bench_function<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if !self.printed_header {
            self.printed_header = true;
            println!(
                "{:<28} {:>14} {:>14} {:>14}  (ns/iter)",
                "benchmark", "mean", "min", "max"
            );
        }
        // Calibrate: how many iterations fill one sample's time slice?
        let slice = self.target / self.samples;
        let mut iters_per_sample = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= slice || iters_per_sample >= 1 << 30 {
                break;
            }
            // Grow toward the slice, at most 10x per step.
            let grow = if el.is_zero() {
                10
            } else {
                (slice.as_nanos() / el.as_nanos().max(1)).clamp(2, 10) as u64
            };
            iters_per_sample = iters_per_sample.saturating_mul(grow);
        }
        // Measure.
        let mut per_iter = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        println!("{name:<28} {mean:>14.1} {min:>14.1} {max:>14.1}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_measures_something() {
        std::env::set_var("VISIM_BENCH_MS", "4");
        let mut r = Runner::new();
        let mut acc = 0u64;
        r.bench_function("spin", || {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert!(acc > 0);
    }
}
