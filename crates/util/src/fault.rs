//! Deterministic seeded fault injection (`VISIM_FAULT`).
//!
//! The durability layer — result store, trace-cache spill, per-cell
//! retry — is only trustworthy if its failure paths are exercised, so
//! this module lets a run inject faults at named points:
//!
//! ```text
//! VISIM_FAULT=<point>:<spec>[,<point>:<spec>...]
//! ```
//!
//! * `store.write.torn:1/8`  — a hash-rate spec `m/n`: the point fires
//!   for a key when `fnv1a64("<point>|<key>|<seed>") % n < m`.
//! * `spill.corrupt:seed7`   — `seed<K>`: rate 1/2 under seed `K`
//!   (reseeding picks a different deterministic victim set).
//! * `cell.panic:conv`       — anything else is a substring match
//!   against the key (here: every cell whose benchmark name contains
//!   `conv` panics).
//!
//! Firing decisions are pure functions of `(point, key, spec)` — no
//! global counters, no wall clock — so they are identical at any
//! `VISIM_JOBS`, across reruns, and across processes. That is what
//! makes fault runs reproducible and lets the kill-resume equivalence
//! gates diff outputs byte-for-byte.
//!
//! Injections are counted per point (`fault.<point>` plus the
//! `fault.injected` total) and exported into every binary's metrics
//! block via [`export_metrics`], so a fault run is self-describing.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use visim_obs::Registry;

use crate::error::SimError;
use crate::hash::fnv1a64;

/// Environment variable holding the fault plan (see module docs).
pub const FAULT_ENV: &str = "VISIM_FAULT";

/// How one rule decides whether it fires for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Spec {
    /// Fire when `fnv1a64("<point>|<key>|<seed>") % n < m`.
    Rate { m: u64, n: u64, seed: u64 },
    /// Fire when the key contains the pattern.
    Contains(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Rule {
    point: String,
    spec: Spec,
}

/// Parse one `<point>:<spec>` clause. `None` for an empty clause (so
/// trailing commas are harmless); a missing spec means "always fire".
fn parse_rule(clause: &str) -> Option<Rule> {
    let clause = clause.trim();
    if clause.is_empty() {
        return None;
    }
    let (point, spec) = match clause.split_once(':') {
        Some((p, s)) => (p, s),
        None => (clause, ""),
    };
    let spec = parse_spec(spec);
    Some(Rule {
        point: point.trim().to_string(),
        spec,
    })
}

fn parse_spec(spec: &str) -> Spec {
    let spec = spec.trim();
    if spec.is_empty() {
        // Bare point: always fires.
        return Spec::Rate {
            m: 1,
            n: 1,
            seed: 0,
        };
    }
    if let Some((m, n)) = spec.split_once('/') {
        if let (Ok(m), Ok(n)) = (m.trim().parse::<u64>(), n.trim().parse::<u64>()) {
            if n >= 1 {
                return Spec::Rate { m, n, seed: 0 };
            }
        }
    }
    if let Some(seed) = spec.strip_prefix("seed") {
        if let Ok(seed) = seed.trim().parse::<u64>() {
            return Spec::Rate { m: 1, n: 2, seed };
        }
    }
    Spec::Contains(spec.to_string())
}

fn parse_plan(plan: &str) -> Vec<Rule> {
    plan.split(',').filter_map(parse_rule).collect()
}

/// The active rules, parsed once per process from [`FAULT_ENV`].
fn rules() -> &'static [Rule] {
    static RULES: OnceLock<Vec<Rule>> = OnceLock::new();
    RULES.get_or_init(|| {
        std::env::var(FAULT_ENV)
            .map(|plan| parse_plan(&plan))
            .unwrap_or_default()
    })
}

/// Injection counters, keyed by point name.
static INJECTED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

fn note_injected(point: &str) {
    let mut map = INJECTED.lock().expect("fault counter lock");
    *map.entry(point.to_string()).or_insert(0) += 1;
}

/// True when any active rule makes `point` fire for `key`; counts the
/// injection. Deterministic in `(point, key)` for a fixed fault plan.
pub fn fires(point: &str, key: &str) -> bool {
    let fired = rules().iter().any(|r| {
        r.point == point
            && match &r.spec {
                Spec::Rate { m, n, seed } => {
                    fnv1a64(format!("{point}|{key}|{seed}").as_bytes()) % n < *m
                }
                Spec::Contains(pat) => key.contains(pat.as_str()),
            }
    });
    if fired {
        note_injected(point);
    }
    fired
}

/// [`fires`] as a `Result`: `Err(SimError::Transient)` when the point
/// fires, for threading through `?` in the experiment runners.
pub fn trip_transient(point: &str, key: &str) -> Result<(), SimError> {
    if fires(point, key) {
        Err(SimError::Transient {
            point: point.to_string(),
            detail: format!("injected at {key}"),
        })
    } else {
        Ok(())
    }
}

/// Snapshot the injection counters into `reg`: `fault.injected` (the
/// total) plus one `fault.<point>` counter per fired point.
pub fn export_metrics(reg: &mut Registry) {
    let map = INJECTED.lock().expect("fault counter lock");
    let total: u64 = map.values().sum();
    reg.set("fault.injected", total);
    for (point, n) in map.iter() {
        reg.set(&format!("fault.{point}"), *n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_into_the_three_shapes() {
        assert_eq!(
            parse_rule("store.write.torn:1/8").unwrap(),
            Rule {
                point: "store.write.torn".into(),
                spec: Spec::Rate {
                    m: 1,
                    n: 8,
                    seed: 0
                },
            }
        );
        assert_eq!(
            parse_rule("spill.corrupt:seed7").unwrap(),
            Rule {
                point: "spill.corrupt".into(),
                spec: Spec::Rate {
                    m: 1,
                    n: 2,
                    seed: 7
                },
            }
        );
        assert_eq!(
            parse_rule("cell.panic:conv").unwrap(),
            Rule {
                point: "cell.panic".into(),
                spec: Spec::Contains("conv".into()),
            }
        );
        assert_eq!(
            parse_rule("store.write.torn").unwrap().spec,
            Spec::Rate {
                m: 1,
                n: 1,
                seed: 0
            },
        );
        let plan = parse_plan("a:1/2, b:xyz ,,c");
        assert_eq!(plan.len(), 3);
        // Malformed rates degrade to substring matches, never panic.
        assert_eq!(parse_spec("3/0"), Spec::Contains("3/0".into()));
        assert_eq!(parse_spec("seedx"), Spec::Contains("seedx".into()));
    }

    #[test]
    fn rate_decisions_are_deterministic_and_seed_sensitive() {
        let decide = |seed: u64, key: &str| {
            fnv1a64(format!("p|{key}|{seed}").as_bytes()).is_multiple_of(2) // m=1,n=2
        };
        // Same inputs, same answer — and across many keys a 1/2 rate
        // fires for some and spares others.
        let keys: Vec<String> = (0..64).map(|i| format!("bench{i}")).collect();
        let first: Vec<bool> = keys.iter().map(|k| decide(0, k)).collect();
        let second: Vec<bool> = keys.iter().map(|k| decide(0, k)).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
        // A different seed picks a different victim set.
        let reseeded: Vec<bool> = keys.iter().map(|k| decide(7, k)).collect();
        assert_ne!(first, reseeded);
    }

    #[test]
    fn trip_transient_builds_a_retryable_error() {
        // No env in unit tests: nothing fires.
        assert!(trip_transient("cell.transient", "conv:0").is_ok());
        let e = SimError::Transient {
            point: "cell.transient".into(),
            detail: "injected at conv:0".into(),
        };
        assert!(e.is_transient());
    }
}
