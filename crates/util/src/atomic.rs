//! Atomic file writes: the single write path every durable artifact
//! uses (result-store cells, trace-cache spills, JSON artifacts,
//! `results/partial/` failure droppings).
//!
//! A plain `fs::write` can tear under SIGKILL or a concurrent writer;
//! writing a process-unique temp file, syncing it, and renaming it into
//! place guarantees readers see either the old complete file or the new
//! complete file, never a mix. Centralizing the helper here keeps that
//! guarantee uniform across crates instead of re-implemented per
//! call site.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process temp-name disambiguator: two worker threads writing the
/// same destination path concurrently must not share a temp file (the
/// pid alone cannot tell them apart).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: create the parent directory,
/// write a process- and call-unique temp file, `sync_all` it, then
/// rename it into place. Readers (and concurrent writers of the same
/// path) see either the old complete file or the new complete file,
/// never a mix.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    write_via_temp(path.as_ref(), bytes, true)
}

/// [`write_atomic`] without the `sync_all`: same temp-file + rename
/// discipline (readers never see a mix), but the data may still be in
/// the page cache when the call returns. Correct only for *cache*
/// files whose readers validate a checksum and treat a damaged file as
/// a miss — a crash can leave a torn or empty file behind, it just
/// cannot produce a wrong result. Durable artifacts (result-store
/// cells, JSON outputs) must keep using [`write_atomic`]: skipping the
/// sync there would let a crash silently lose completed work.
pub fn write_atomic_unsynced(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    write_via_temp(path.as_ref(), bytes, false)
}

fn write_via_temp(path: &Path, bytes: &[u8], sync: bool) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".{}.{}.tmp", std::process::id(), seq));
    let tmp = std::path::PathBuf::from(tmp);
    let written = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
        Ok(())
    })();
    if let Err(e) = written {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("visim-atomic-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_land_complete_and_replace_old_content() {
        let dir = scratch("basic");
        let path = dir.join("sub/dir/file.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsynced_variant_shares_the_rename_discipline() {
        let dir = scratch("unsynced");
        let path = dir.join("cache/stream.vtrc");
        write_atomic_unsynced(&path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        write_atomic_unsynced(&path, b"replaced").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"replaced");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_to_one_path_never_tear() {
        let dir = scratch("race");
        let path = dir.join("cell.bin");
        std::thread::scope(|s| {
            for i in 0..8u8 {
                let path = &path;
                s.spawn(move || {
                    let payload = vec![i; 4096];
                    for _ in 0..20 {
                        write_atomic(path, &payload).unwrap();
                    }
                });
            }
        });
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got.len(), 4096);
        assert!(got.windows(2).all(|w| w[0] == w[1]), "mixed payloads");
        std::fs::remove_dir_all(&dir).ok();
    }
}
