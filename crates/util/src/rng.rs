//! A small, fast, seedable PRNG: xoshiro256** seeded through SplitMix64.
//!
//! This replaces the `rand` crate for the deterministic synthetic inputs
//! (DESIGN.md, substitution #2) and for the property-test harness. The
//! generators are the public-domain reference algorithms of Blackman &
//! Vigna; determinism in the seed is part of the contract (DESIGN.md §7:
//! same seed → same inputs → same cycle counts).

/// Advance a SplitMix64 state and return the next output.
///
/// Used both to seed [`Rng`] and as a cheap stateless mixer (e.g. to
/// derive per-case seeds in the property harness).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded, as the
    /// xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `i64`.
    pub fn i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform `i32`.
    pub fn i32(&mut self) -> i32 {
        self.u32() as i32
    }

    /// Uniform `i16`.
    pub fn i16(&mut self) -> i16 {
        self.u16() as i16
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in a half-open range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.5..1.5)`. Panics on an empty range.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fixed-size array whose elements come from `f`.
    pub fn array<const N: usize, T>(&mut self, mut f: impl FnMut(&mut Rng) -> T) -> [T; N] {
        std::array::from_fn(|_| f(self))
    }

    /// Vector of `gen_range(len_range)` elements from `f`.
    pub fn vec<T>(
        &mut self,
        len_range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let n = self.gen_range(len_range);
        (0..n).map(|_| f(self)).collect()
    }

    /// Unbiased integer in `[0, n)` (Lemire-style rejection).
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// A half-open range that [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = r.gen_range(-5i32..7);
            assert!((-5..7).contains(&x));
            let y = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = r.gen_range(3usize..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut r = Rng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_floats_fill_the_interval() {
        let mut r = Rng::seed_from_u64(3);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for _ in 0..4000 {
            let v = r.f64_unit();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "observed [{lo}, {hi}]");
    }

    #[test]
    fn vec_respects_length_range() {
        let mut r = Rng::seed_from_u64(4);
        for _ in 0..100 {
            let v = r.vec(1..5, |r| r.u8());
            assert!((1..5).contains(&v.len()));
        }
    }
}
