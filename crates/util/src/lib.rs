//! `visim-util` — zero-dependency substrate utilities for the visim
//! workspace.
//!
//! The workspace builds hermetically (`cargo build --offline` with no
//! registry access); this crate provides the in-tree replacements for
//! the three external crates the seed depended on, plus the shared
//! fault model:
//!
//! * [`rng`] — seeded SplitMix64 / xoshiro256** PRNG (replaces `rand`)
//!   for the deterministic synthetic inputs;
//! * [`prop`] — a property-testing harness with closure generators and
//!   iteration-bounded shrinking (replaces `proptest`);
//! * [`bench`] — a wall-clock microbenchmark runner (replaces
//!   `criterion`) for `harness = false` bench targets;
//! * [`atomic`] — temp-file + `sync_all` + rename writes, the single
//!   write path every durable artifact (result-store cells, trace
//!   spills, JSON artifacts, partial-failure droppings) lands through;
//! * [`error`] — [`SimError`], the typed fault model threaded through
//!   the pipeline watchdog, the memory-model invariant checks and the
//!   experiment runners;
//! * [`fault`] — the deterministic seeded fault-injection harness
//!   (`VISIM_FAULT=<point>:<spec>`) exercising the store, spill, and
//!   worker-pool failure paths;
//! * [`hash`] — stable 64-bit FNV-1a hashing for digests that must
//!   agree across processes and builds (trace-cache keys, on-disk
//!   trace checksums);
//! * [`pool`] — a scoped worker pool with a bounded job queue (replaces
//!   `rayon`) for the parallel experiment executor; it also records
//!   per-job queue-wait and run wall-clock plus queue-depth samples,
//!   exported into a `visim_obs` metrics registry for the JSON result
//!   artifacts.

pub mod atomic;
pub mod bench;
pub mod error;
pub mod fault;
pub mod hash;
pub mod pool;
pub mod prop;
pub mod rng;

pub use error::SimError;
pub use hash::fnv1a64;
pub use rng::Rng;
