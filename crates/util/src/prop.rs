//! A minimal property-testing harness (the workspace's `proptest`
//! substitute): closure-based generators, seeded deterministic cases,
//! and iteration-bounded greedy shrinking.
//!
//! # Example
//!
//! ```
//! use visim_util::prop::{self, Config};
//! use visim_util::prop_assert_eq;
//!
//! prop::check(Config::default(), |rng| (rng.i32(), rng.i32()), |&(a, b)| {
//!     prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     Ok(())
//! });
//! ```
//!
//! Properties return `Result<(), String>`: `Err` is a counterexample
//! (use the [`crate::prop_assert!`] family), `Ok` passes. A property may
//! also `return Ok(())` early to discard inputs it does not cover —
//! shrinking may walk outside a generator's range, and an early-return
//! guard keeps those candidates from being reported as counterexamples.

use std::fmt::Debug;

use crate::rng::{splitmix64, Rng};

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run (`VISIM_PROP_CASES` overrides).
    pub cases: u32,
    /// Base seed; case `i` runs with a seed derived from `seed` and `i`
    /// (`VISIM_PROP_SEED` overrides, for replaying a failure).
    pub seed: u64,
    /// Upper bound on total shrink-candidate evaluations once a case
    /// fails, so pathological shrink spaces cannot hang the suite.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse().ok());
        Config {
            cases: env_u64("VISIM_PROP_CASES")
                .map(|c: u64| c as u32)
                .unwrap_or(64),
            seed: env_u64("VISIM_PROP_SEED").unwrap_or(0x5eed_cafe_f00d_0001),
            max_shrink_iters: 512,
        }
    }
}

impl Config {
    /// Default configuration with an explicit case count.
    pub fn cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// A property outcome: `Ok` passes, `Err` carries the failure message.
pub type PropResult = Result<(), String>;

/// Types the harness knows how to shrink. The default is "no candidates"
/// so any test-local type participates without extra code (its
/// containers still shrink structurally).
pub trait Shrink: Sized + Clone {
    /// Strictly-simpler candidate values, most aggressive first.
    fn shrinks(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrinks(&self) -> Vec<Self> {
                let mut out = Vec::new();
                let x = *self;
                if x != 0 {
                    out.push(0);
                    let half = x / 2;
                    if half != 0 && half != x {
                        out.push(half);
                    }
                    if x > 0 {
                        out.push(x - 1);
                    } else {
                        out.push(x + 1);
                    }
                    out.dedup();
                }
                out
            }
        }
    )*};
}

impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrinks(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrinks(&self) -> Vec<Self> {
        let x = *self;
        if x == 0.0 || !x.is_finite() {
            return Vec::new();
        }
        vec![0.0, x / 2.0, x.trunc()]
    }
}

impl<T: Shrink, const N: usize> Shrink for [T; N] {
    fn shrinks(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..N {
            for cand in self[i].shrinks() {
                let mut next = self.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

impl<T: Shrink> Shrink for Vec<T> {
    fn shrinks(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        // Structural shrinks first: halves, then single-element drops.
        if n > 0 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
            for i in 0..n.min(16) {
                let mut next = self.clone();
                next.remove(i);
                out.push(next);
            }
        }
        // Element shrinks on a bounded prefix.
        for i in 0..n.min(8) {
            for cand in self[i].shrinks() {
                let mut next = self.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink),+> Shrink for ($($name,)+) {
            fn shrinks(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrinks() {
                        let mut next = self.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_shrink_tuple!(A: 0);
impl_shrink_tuple!(A: 0, B: 1);
impl_shrink_tuple!(A: 0, B: 1, C: 2);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Run `prop` against `cfg.cases` inputs drawn from `gen`; on failure,
/// shrink greedily (bounded by `cfg.max_shrink_iters` candidate
/// evaluations) and panic with the minimal counterexample.
pub fn check<T, G, P>(cfg: Config, gen: G, prop: P)
where
    T: Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> PropResult,
{
    for case in 0..cfg.cases {
        let mut state = cfg.seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = Rng::seed_from_u64(splitmix64(&mut state));
        let input = gen(&mut rng);
        if let Err(msg) = prop(&input) {
            let (min, min_msg, iters) = shrink_loop(input, msg, &prop, cfg.max_shrink_iters);
            panic!(
                "property failed (case {case}/{}, seed {:#x}; \
                 rerun with VISIM_PROP_SEED={}):\n  {}\n\
                 minimal counterexample after {iters} shrink evaluations:\n  {:?}",
                cfg.cases, cfg.seed, cfg.seed, min_msg, min
            );
        }
    }
}

fn shrink_loop<T, P>(start: T, msg: String, prop: &P, budget: u32) -> (T, String, u32)
where
    T: Shrink,
    P: Fn(&T) -> PropResult,
{
    let mut cur = start;
    let mut cur_msg = msg;
    let mut iters = 0u32;
    'outer: loop {
        for cand in cur.shrinks() {
            if iters >= budget {
                break 'outer;
            }
            iters += 1;
            if let Err(m) = prop(&cand) {
                cur = cand;
                cur_msg = m;
                continue 'outer; // restart from the simpler input
            }
        }
        break; // no candidate still fails: local minimum
    }
    (cur, cur_msg, iters)
}

/// `assert!` for properties: evaluates to `return Err(..)` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{} != {}: {:?} vs {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "{} == {}: both {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            Config::cases(17),
            |rng| rng.u32(),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        n += counter.get();
        assert_eq!(n, 17);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let failure = std::panic::catch_unwind(|| {
            check(
                Config::cases(200),
                |rng| rng.gen_range(0u32..10_000),
                |&x| {
                    prop_assert!(x < 100, "too big: {x}");
                    Ok(())
                },
            );
        })
        .unwrap_err();
        let msg = failure.downcast_ref::<String>().unwrap();
        // Greedy shrink from any failing value must reach exactly 100.
        assert!(msg.contains("minimal counterexample"), "{msg}");
        assert!(msg.contains("100"), "{msg}");
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        let failure = std::panic::catch_unwind(|| {
            check(
                Config::cases(100),
                |rng| rng.vec(0..40, |r| r.u8()),
                |v: &Vec<u8>| {
                    prop_assert!(v.len() < 3, "len {}", v.len());
                    Ok(())
                },
            );
        })
        .unwrap_err();
        let msg = failure.downcast_ref::<String>().unwrap();
        assert!(msg.contains("len 3"), "minimal vec has length 3: {msg}");
    }

    #[test]
    fn shrink_budget_bounds_work() {
        // A property that always fails with an enormous shrink space
        // must still terminate within the iteration budget.
        let cfg = Config {
            cases: 1,
            seed: 1,
            max_shrink_iters: 50,
        };
        let evals = std::cell::Cell::new(0u32);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(
                cfg,
                |rng| rng.vec(64..65, |r| r.u64()),
                |_| {
                    evals.set(evals.get() + 1);
                    Err("always".into())
                },
            );
        }));
        assert!(r.is_err());
        assert!(evals.get() <= 52, "evaluations bounded: {}", evals.get());
    }

    #[test]
    fn tuple_and_array_shrinks_are_componentwise() {
        let t = (4u8, [2i16, 0, 0, 0]);
        let cands = t.shrinks();
        assert!(cands.contains(&(0u8, [2i16, 0, 0, 0])));
        assert!(cands.contains(&(4u8, [0i16, 0, 0, 0])));
    }
}
