//! A zero-dependency scoped worker pool with a bounded job queue.
//!
//! The experiment layer fans independent simulations out over OS
//! threads (`std::thread::scope`; the workspace builds hermetically, so
//! no rayon/crossbeam). Jobs are indexed and results are written back
//! into their input slot, so [`run_ordered`] returns results in input
//! order regardless of completion order — callers get bit-identical
//! output whether one worker or sixteen ran the jobs.
//!
//! The queue is bounded (a handful of jobs per worker) so a producer
//! generating jobs lazily cannot balloon memory ahead of slow workers;
//! with the job counts in this workspace it simply acts as a fixed
//! hand-off buffer.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use visim_obs::{Histogram, Registry};

/// A blocking bounded MPMC queue (mutex + condvars; no spinning).
///
/// The queue samples its own depth at every push (while the lock is
/// already held), so the pool can surface a queue-depth histogram in
/// the observability artifacts without extra synchronization.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// `depth_counts[d]` = number of pushes that left `d` items queued.
    depth_counts: Vec<u64>,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be positive");
        BoundedQueue {
            cap,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(cap),
                closed: false,
                depth_counts: vec![0; cap + 1],
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock().expect("queue poisoned");
        while st.items.len() >= self.cap && !st.closed {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        let depth = st.items.len();
        st.depth_counts[depth] += 1;
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Post-push queue-depth distribution. The bucket layout is fixed
    /// (powers of two up to 64) so histograms from runs with different
    /// queue capacities merge cleanly into one registry entry.
    pub fn depth_histogram(&self) -> Histogram {
        let st = self.state.lock().expect("queue poisoned");
        let mut h = Histogram::new(&[1, 2, 4, 8, 16, 32, 64]);
        for (depth, &n) in st.depth_counts.iter().enumerate() {
            for _ in 0..n {
                h.observe(depth as u64);
            }
        }
        h
    }

    /// Dequeue one item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// Close the queue: pending items stay poppable, further pushes are
    /// rejected, and blocked poppers wake with `None` once drained.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Wall-clock observation of one pool job: how long it sat queued
/// behind slower jobs, and how long it ran.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobTiming {
    /// Time between enqueue and a worker dequeuing the job (0 on the
    /// serial path, which has no queue).
    pub queue_wait_ns: u64,
    /// Time the job itself ran.
    pub run_ns: u64,
}

/// Observability record of one [`run_ordered_timed`] call.
#[derive(Debug, Clone, Default)]
pub struct PoolRunStats {
    /// Worker threads actually used (1 = serial reference path).
    pub workers: usize,
    /// Per-job timings, in input order.
    pub timings: Vec<JobTiming>,
    /// Post-push queue-depth distribution (empty on the serial path).
    pub queue_depth: Option<Histogram>,
}

/// Histogram layout for pool latency metrics: exponential buckets from
/// 1 µs to ~4.6 min, in nanoseconds.
fn latency_histogram() -> Histogram {
    Histogram::exponential(1 << 10, 28)
}

impl PoolRunStats {
    /// Fold this run into a metrics registry:
    ///
    /// * `pool.runs`, `pool.jobs`, `pool.workers` counters;
    /// * `pool.queue_wait_ns` and `pool.job_run_ns` histograms (whose
    ///   serialized form carries exact max/mean);
    /// * `pool.queue_depth` histogram (parallel runs only).
    pub fn export(&self, reg: &mut Registry) {
        reg.add("pool.runs", 1);
        reg.add("pool.jobs", self.timings.len() as u64);
        reg.add("pool.workers", self.workers as u64);
        for t in &self.timings {
            reg.observe_with("pool.queue_wait_ns", t.queue_wait_ns, latency_histogram);
            reg.observe_with("pool.job_run_ns", t.run_ns, latency_histogram);
        }
        if let Some(depth) = &self.queue_depth {
            reg.merge_histogram("pool.queue_depth", depth);
        }
    }
}

/// Run every job and return the results **in input order**.
///
/// Convenience wrapper over [`run_ordered_timed`] that discards the
/// timing observations.
///
/// # Panics
///
/// A panicking job does not abort the process or poison its siblings:
/// the payload is caught in the worker, every other job still runs, and
/// the first panic (in input order) is resumed on the calling thread
/// after the pool drains.
pub fn run_ordered<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_ordered_timed(workers, jobs).0
}

/// Run every job, returning the results **in input order** plus the
/// per-job wall-clock observations ([`PoolRunStats`]).
///
/// Convenience wrapper over [`run_ordered_timed_observed`] with no
/// progress observer.
///
/// # Panics
///
/// Same contract as [`run_ordered`].
pub fn run_ordered_timed<T, F>(workers: usize, jobs: Vec<F>) -> (Vec<T>, PoolRunStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_ordered_timed_observed(workers, jobs, None)
}

/// A per-job-completion progress callback: `(done, total, run_ns)`.
/// `done` counts completed jobs (1-based, monotone per observer call but
/// calls from different workers may interleave), `total` is the job
/// count, `run_ns` is how long the just-finished job ran.
pub type ProgressFn<'a> = &'a (dyn Fn(usize, usize, u64) + Sync);

/// Run every job, returning the results **in input order** plus the
/// per-job wall-clock observations ([`PoolRunStats`]), invoking
/// `observer` after each job completes.
///
/// With `workers <= 1` (or fewer than two jobs) the jobs run serially
/// on the calling thread — this is the `VISIM_JOBS=1` reference path,
/// with no threads spawned at all. Otherwise `min(workers, jobs)`
/// scoped threads drain a bounded queue of `(index, job)` pairs and
/// write each result into its input slot. Neither the timing side
/// channel nor the observer ever influences the results, so output
/// remains bit-identical for any worker count and any observer.
///
/// # Panics
///
/// Same contract as [`run_ordered`]. The observer is invoked even for
/// jobs that panicked (their completion still counts toward `done`).
pub fn run_ordered_timed_observed<T, F>(
    workers: usize,
    jobs: Vec<F>,
    observer: Option<ProgressFn<'_>>,
) -> (Vec<T>, PoolRunStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_jobs = jobs.len();
    if workers <= 1 || n_jobs <= 1 {
        let mut timings = Vec::with_capacity(n_jobs);
        let results = jobs
            .into_iter()
            .enumerate()
            .map(|(ix, f)| {
                let started = Instant::now();
                let out = f();
                let run_ns = elapsed_ns(started);
                timings.push(JobTiming {
                    queue_wait_ns: 0,
                    run_ns,
                });
                if let Some(obs) = observer {
                    obs(ix + 1, n_jobs, run_ns);
                }
                out
            })
            .collect();
        return (
            results,
            PoolRunStats {
                workers: 1,
                timings,
                queue_depth: None,
            },
        );
    }
    let workers = workers.min(n_jobs);
    let queue: BoundedQueue<(usize, Instant, F)> = BoundedQueue::new(workers * 2);
    type Slot<T> = Mutex<Option<(std::thread::Result<T>, JobTiming)>>;
    let slots: Vec<Slot<T>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let queue = &queue;
        let slots = &slots;
        let done = &done;
        for _ in 0..workers {
            s.spawn(move || {
                while let Some((ix, queued_at, job)) = queue.pop() {
                    let queue_wait_ns = elapsed_ns(queued_at);
                    let started = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(job));
                    let timing = JobTiming {
                        queue_wait_ns,
                        run_ns: elapsed_ns(started),
                    };
                    *slots[ix].lock().expect("result slot poisoned") = Some((result, timing));
                    if let Some(obs) = observer {
                        let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
                        obs(finished, n_jobs, timing.run_ns);
                    }
                }
            });
        }
        for (ix, job) in jobs.into_iter().enumerate() {
            queue.push((ix, Instant::now(), job));
        }
        queue.close();
    });
    let mut timings = Vec::with_capacity(n_jobs);
    let results = slots
        .into_iter()
        .map(|slot| {
            let (result, timing) = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker pool ran every job");
            timings.push(timing);
            match result {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            }
        })
        .collect();
    (
        results,
        PoolRunStats {
            workers,
            timings,
            queue_depth: Some(queue.depth_histogram()),
        },
    )
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        // Make early jobs the slowest so completion order is scrambled.
        let jobs: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i < 4 {
                        std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i as u64));
                    }
                    i * i
                }
            })
            .collect();
        let out = run_ordered(8, jobs);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || {
            (0..20u64)
                .map(|i| move || i.wrapping_mul(0x9e37) ^ i)
                .collect()
        };
        assert_eq!(run_ordered::<u64, _>(1, mk()), run_ordered(7, mk()));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| || counter.fetch_add(1, Ordering::SeqCst))
            .collect();
        let mut out = run_ordered(4, jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sibling_jobs_survive_a_panicking_job() {
        let done = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 3 {
                        panic!("job 3 exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst)
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| run_ordered(4, jobs)));
        assert!(caught.is_err(), "panic propagates to the caller");
        assert_eq!(done.load(Ordering::SeqCst), 15, "siblings still ran");
    }

    #[test]
    fn timed_runs_observe_every_job() {
        let jobs: Vec<_> = (0..24u64).map(|i| move || i).collect();
        let (out, stats) = run_ordered_timed(4, jobs);
        assert_eq!(out, (0..24u64).collect::<Vec<_>>());
        assert_eq!(stats.timings.len(), 24);
        assert_eq!(stats.workers, 4);
        let depth = stats
            .queue_depth
            .as_ref()
            .expect("parallel run has a queue");
        assert_eq!(depth.count(), 24, "one depth sample per push");
        let mut reg = Registry::new();
        stats.export(&mut reg);
        assert_eq!(reg.counter("pool.jobs"), 24);
        assert_eq!(reg.counter("pool.runs"), 1);
        assert_eq!(reg.histogram("pool.job_run_ns").unwrap().count(), 24);
        assert_eq!(reg.histogram("pool.queue_wait_ns").unwrap().count(), 24);
    }

    #[test]
    fn serial_path_times_jobs_without_a_queue() {
        let jobs: Vec<_> = (0..3u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    i
                }
            })
            .collect();
        let (out, stats) = run_ordered_timed(1, jobs);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(stats.workers, 1);
        assert!(stats.queue_depth.is_none(), "no queue on the serial path");
        assert!(stats.timings.iter().all(|t| t.queue_wait_ns == 0));
        assert!(stats.timings.iter().all(|t| t.run_ns >= 1_000_000));
    }

    #[test]
    fn pool_exports_merge_across_runs() {
        let mut reg = Registry::new();
        for _ in 0..2 {
            let (_, stats) = run_ordered_timed(3, (0..8u64).map(|i| move || i).collect());
            stats.export(&mut reg);
        }
        assert_eq!(reg.counter("pool.runs"), 2);
        assert_eq!(reg.counter("pool.jobs"), 16);
        assert_eq!(reg.histogram("pool.queue_depth").unwrap().count(), 16);
    }

    #[test]
    fn observer_sees_every_completion() {
        for workers in [1, 4] {
            let calls = Mutex::new(Vec::new());
            let obs = |done: usize, total: usize, _run_ns: u64| {
                calls.lock().unwrap().push((done, total));
            };
            let jobs: Vec<_> = (0..12u64).map(|i| move || i * 3).collect();
            let (out, _) = run_ordered_timed_observed(workers, jobs, Some(&obs));
            assert_eq!(out, (0..12u64).map(|i| i * 3).collect::<Vec<_>>());
            let mut seen = calls.into_inner().unwrap();
            assert!(seen.iter().all(|&(_, total)| total == 12));
            seen.sort_unstable();
            assert_eq!(
                seen.iter().map(|&(done, _)| done).collect::<Vec<_>>(),
                (1..=12).collect::<Vec<_>>(),
                "each completion count reported exactly once"
            );
        }
    }

    #[test]
    fn queue_rejects_pushes_after_close() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1));
        q.close();
        assert!(!q.push(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }
}
