//! A zero-dependency scoped worker pool with a bounded job queue.
//!
//! The experiment layer fans independent simulations out over OS
//! threads (`std::thread::scope`; the workspace builds hermetically, so
//! no rayon/crossbeam). Jobs are indexed and results are written back
//! into their input slot, so [`run_ordered`] returns results in input
//! order regardless of completion order — callers get bit-identical
//! output whether one worker or sixteen ran the jobs.
//!
//! The queue is bounded (a handful of jobs per worker) so a producer
//! generating jobs lazily cannot balloon memory ahead of slow workers;
//! with the job counts in this workspace it simply acts as a fixed
//! hand-off buffer.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// A blocking bounded MPMC queue (mutex + condvars; no spinning).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be positive");
        BoundedQueue {
            cap,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock().expect("queue poisoned");
        while st.items.len() >= self.cap && !st.closed {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Dequeue one item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// Close the queue: pending items stay poppable, further pushes are
    /// rejected, and blocked poppers wake with `None` once drained.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Run every job and return the results **in input order**.
///
/// With `workers <= 1` (or fewer than two jobs) the jobs run serially
/// on the calling thread — this is the `VISIM_JOBS=1` reference path,
/// with no threads spawned at all. Otherwise `min(workers, jobs)`
/// scoped threads drain a bounded queue of `(index, job)` pairs and
/// write each result into its input slot.
///
/// # Panics
///
/// A panicking job does not abort the process or poison its siblings:
/// the payload is caught in the worker, every other job still runs, and
/// the first panic (in input order) is resumed on the calling thread
/// after the pool drains.
pub fn run_ordered<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let workers = workers.min(jobs.len());
    let queue: BoundedQueue<(usize, F)> = BoundedQueue::new(workers * 2);
    let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let queue = &queue;
        let slots = &slots;
        for _ in 0..workers {
            s.spawn(move || {
                while let Some((ix, job)) = queue.pop() {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    *slots[ix].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
        for pair in jobs.into_iter().enumerate() {
            queue.push(pair);
        }
        queue.close();
    });
    slots
        .into_iter()
        .map(|slot| {
            match slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker pool ran every job")
            {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        // Make early jobs the slowest so completion order is scrambled.
        let jobs: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i < 4 {
                        std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i as u64));
                    }
                    i * i
                }
            })
            .collect();
        let out = run_ordered(8, jobs);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || {
            (0..20u64)
                .map(|i| move || i.wrapping_mul(0x9e37) ^ i)
                .collect()
        };
        assert_eq!(run_ordered::<u64, _>(1, mk()), run_ordered(7, mk()));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| || counter.fetch_add(1, Ordering::SeqCst))
            .collect();
        let mut out = run_ordered(4, jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sibling_jobs_survive_a_panicking_job() {
        let done = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 3 {
                        panic!("job 3 exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst)
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| run_ordered(4, jobs)));
        assert!(caught.is_err(), "panic propagates to the caller");
        assert_eq!(done.load(Ordering::SeqCst), 15, "siblings still ran");
    }

    #[test]
    fn queue_rejects_pushes_after_close() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1));
        q.close();
        assert!(!q.push(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }
}
