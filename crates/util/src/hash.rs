//! FNV-1a hashing: a tiny, stable, dependency-free 64-bit hash.
//!
//! Used wherever the workspace needs a digest that must be identical
//! across processes and builds — trace-cache keys derived from workload
//! geometry, and the integrity checksum of on-disk trace files. (Rust's
//! `DefaultHasher` is explicitly unstable across releases, so it cannot
//! key an on-disk format.)

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash `bytes` with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values from the FNV specification (Noll).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn sensitive_to_order_and_length() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ab\0"));
    }
}
