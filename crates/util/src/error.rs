//! The simulator's typed fault model.
//!
//! Model bugs and hostile workloads must terminate a study run with a
//! diagnosis, never hang it or kill the sibling benchmarks: the pipeline
//! watchdog, the memory-model invariant checks and the experiment
//! runners all surface failures as a [`SimError`], and the figure
//! binaries degrade gracefully (error row + nonzero exit) around it.

use std::fmt;

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline watchdog fired: retirement made no progress within
    /// the configured cycle budget (a wedged model would otherwise spin
    /// forever). `diagnostic` is the pipeline's state dump.
    CycleBudget {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// Human-readable dump: window occupancy, fetch-queue depth,
        /// oldest un-retired instruction, queue states.
        diagnostic: String,
    },
    /// A runtime model invariant was violated (checked in release
    /// builds, unlike `debug_assert!`).
    Invariant {
        /// Which model tripped ("pipeline", "mshr", "mem", ...).
        model: &'static str,
        /// What was violated.
        detail: String,
    },
    /// The workload itself failed (panicked or produced invalid data)
    /// before or while driving the simulator.
    Workload {
        /// Benchmark name.
        bench: String,
        /// Failure description.
        detail: String,
    },
}

impl SimError {
    /// The variant name, as recorded in failure artifacts
    /// (`"error_kind"` in the `visim-results-v1` schema).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::CycleBudget { .. } => "CycleBudget",
            SimError::Invariant { .. } => "Invariant",
            SimError::Workload { .. } => "Workload",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleBudget { cycle, diagnostic } => {
                write!(
                    f,
                    "cycle budget exceeded at cycle {cycle}: no retirement progress; {diagnostic}"
                )
            }
            SimError::Invariant { model, detail } => {
                write!(f, "{model} invariant violated: {detail}")
            }
            SimError::Workload { bench, detail } => {
                write!(f, "workload '{bench}' failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::CycleBudget {
            cycle: 12_345,
            diagnostic: "window=64/64 fetch_q=3".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12345") && s.contains("window=64/64"), "{s}");
        let e = SimError::Invariant {
            model: "mshr",
            detail: "occupancy 13 > capacity 12".into(),
        };
        assert!(e.to_string().contains("mshr invariant"), "{e}");
        let e = SimError::Workload {
            bench: "cjpeg".into(),
            detail: "panicked".into(),
        };
        assert!(e.to_string().contains("cjpeg"), "{e}");
    }

    #[test]
    fn kind_names_the_variant() {
        let e = SimError::Workload {
            bench: "cjpeg".into(),
            detail: "panicked".into(),
        };
        assert_eq!(e.kind(), "Workload");
        let e = SimError::Invariant {
            model: "mshr",
            detail: "x".into(),
        };
        assert_eq!(e.kind(), "Invariant");
    }
}
