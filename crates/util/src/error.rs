//! The simulator's typed fault model.
//!
//! Model bugs and hostile workloads must terminate a study run with a
//! diagnosis, never hang it or kill the sibling benchmarks: the pipeline
//! watchdog, the memory-model invariant checks and the experiment
//! runners all surface failures as a [`SimError`], and the figure
//! binaries degrade gracefully (error row + nonzero exit) around it.

use std::fmt;

use visim_obs::codec::{ByteReader, ByteWriter};

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline watchdog fired: retirement made no progress within
    /// the configured cycle budget (a wedged model would otherwise spin
    /// forever). `diagnostic` is the pipeline's state dump.
    CycleBudget {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// Human-readable dump: window occupancy, fetch-queue depth,
        /// oldest un-retired instruction, queue states.
        diagnostic: String,
    },
    /// A runtime model invariant was violated (checked in release
    /// builds, unlike `debug_assert!`).
    Invariant {
        /// Which model tripped ("pipeline", "mshr", "mem", ...).
        model: &'static str,
        /// What was violated.
        detail: String,
    },
    /// The workload itself failed (panicked or produced invalid data)
    /// before or while driving the simulator.
    Workload {
        /// Benchmark name.
        bench: String,
        /// Failure description.
        detail: String,
    },
    /// A transient environmental fault (injected via `VISIM_FAULT`, or
    /// a future flaky-I/O condition): unlike the deterministic variants
    /// above, retrying the same cell may succeed, so the experiment
    /// runners retry these with bounded backoff instead of failing the
    /// cell outright.
    Transient {
        /// The fault point that fired (e.g. `cell.transient`).
        point: String,
        /// What happened.
        detail: String,
    },
}

impl SimError {
    /// The variant name, as recorded in failure artifacts
    /// (`"error_kind"` in the `visim-results-v2` schema).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::CycleBudget { .. } => "CycleBudget",
            SimError::Invariant { .. } => "Invariant",
            SimError::Workload { .. } => "Workload",
            SimError::Transient { .. } => "Transient",
        }
    }

    /// True for faults where retrying the same cell may succeed. The
    /// deterministic kinds (model bugs, hostile workloads) re-fail
    /// identically on every attempt, so retrying them only wastes time;
    /// the runners fail fast on those.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Transient { .. })
    }

    /// Append the error to `w` in the result-store payload encoding.
    /// Every field round-trips exactly, so a failed cell served from
    /// the store on resume reproduces its original error row
    /// byte-for-byte.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            SimError::CycleBudget { cycle, diagnostic } => {
                w.put_u8(0);
                w.put_u64(*cycle);
                w.put_str(diagnostic);
            }
            SimError::Invariant { model, detail } => {
                w.put_u8(1);
                w.put_str(model);
                w.put_str(detail);
            }
            SimError::Workload { bench, detail } => {
                w.put_u8(2);
                w.put_str(bench);
                w.put_str(detail);
            }
            SimError::Transient { point, detail } => {
                w.put_u8(3);
                w.put_str(point);
                w.put_str(detail);
            }
        }
    }

    /// Decode an error written by [`SimError::encode_into`].
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, String> {
        match r.u8()? {
            0 => Ok(SimError::CycleBudget {
                cycle: r.u64()?,
                diagnostic: r.str()?,
            }),
            1 => {
                let model = intern_model(&r.str()?);
                Ok(SimError::Invariant {
                    model,
                    detail: r.str()?,
                })
            }
            2 => Ok(SimError::Workload {
                bench: r.str()?,
                detail: r.str()?,
            }),
            3 => Ok(SimError::Transient {
                point: r.str()?,
                detail: r.str()?,
            }),
            other => Err(format!("unknown SimError tag {other}")),
        }
    }
}

/// Map a decoded invariant model name back onto the `&'static str` the
/// enum carries. The simulator constructs `Invariant` from a small
/// closed set of literals; an unrecognized name (written by a newer
/// binary) is leaked once — bounded by the set of distinct names, never
/// per decode of the same name.
fn intern_model(name: &str) -> &'static str {
    match name {
        "pipeline" => "pipeline",
        "mshr" => "mshr",
        "mem" => "mem",
        "cache" => "cache",
        "trace" => "trace",
        _ => {
            use std::collections::BTreeSet;
            use std::sync::Mutex;
            static LEAKED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
            let mut set = LEAKED.lock().expect("model intern lock");
            if let Some(s) = set.get(name) {
                s
            } else {
                let s: &'static str = Box::leak(name.to_string().into_boxed_str());
                set.insert(s);
                s
            }
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleBudget { cycle, diagnostic } => {
                write!(
                    f,
                    "cycle budget exceeded at cycle {cycle}: no retirement progress; {diagnostic}"
                )
            }
            SimError::Invariant { model, detail } => {
                write!(f, "{model} invariant violated: {detail}")
            }
            SimError::Workload { bench, detail } => {
                write!(f, "workload '{bench}' failed: {detail}")
            }
            SimError::Transient { point, detail } => {
                write!(f, "transient fault at {point}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::CycleBudget {
            cycle: 12_345,
            diagnostic: "window=64/64 fetch_q=3".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12345") && s.contains("window=64/64"), "{s}");
        let e = SimError::Invariant {
            model: "mshr",
            detail: "occupancy 13 > capacity 12".into(),
        };
        assert!(e.to_string().contains("mshr invariant"), "{e}");
        let e = SimError::Workload {
            bench: "cjpeg".into(),
            detail: "panicked".into(),
        };
        assert!(e.to_string().contains("cjpeg"), "{e}");
    }

    #[test]
    fn every_variant_round_trips_through_the_codec() {
        let cases = vec![
            SimError::CycleBudget {
                cycle: u64::MAX,
                diagnostic: "window=64/64 fetch_q=3".into(),
            },
            SimError::Invariant {
                model: "mshr",
                detail: "occupancy 13 > capacity 12".into(),
            },
            SimError::Invariant {
                model: intern_model("future-model"),
                detail: "from a newer binary".into(),
            },
            SimError::Workload {
                bench: "cjpeg".into(),
                detail: "panicked: index out of bounds".into(),
            },
            SimError::Transient {
                point: "cell.transient".into(),
                detail: "injected at conv:0".into(),
            },
        ];
        for e in cases {
            let mut w = ByteWriter::new();
            e.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = SimError::decode_from(&mut r).unwrap();
            r.done().unwrap();
            assert_eq!(back, e);
            assert_eq!(back.to_string(), e.to_string(), "Display must round-trip");
        }
    }

    #[test]
    fn only_transient_is_retryable() {
        assert!(SimError::Transient {
            point: "p".into(),
            detail: "d".into()
        }
        .is_transient());
        assert!(!SimError::Workload {
            bench: "b".into(),
            detail: "d".into()
        }
        .is_transient());
        assert!(!SimError::CycleBudget {
            cycle: 1,
            diagnostic: "d".into()
        }
        .is_transient());
    }

    #[test]
    fn kind_names_the_variant() {
        let e = SimError::Workload {
            bench: "cjpeg".into(),
            detail: "panicked".into(),
        };
        assert_eq!(e.kind(), "Workload");
        let e = SimError::Invariant {
            model: "mshr",
            detail: "x".into(),
        };
        assert_eq!(e.kind(), "Invariant");
    }
}
