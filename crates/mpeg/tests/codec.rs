//! End-to-end MPEG codec tests: encode + decode a synthetic video with
//! the paper's I-B-B-P pattern and verify reconstruction quality and
//! structural behaviour.

use media_image::synth;
use media_mpeg::{decode, encode, gop_ibbp, FrameType, MpegParams, Variant};
use visim_cpu::{CountingSink, CpuStats};
use visim_trace::Program;

fn roundtrip(
    v: Variant,
) -> (
    Vec<media_image::synth::Yuv420>,
    Vec<media_image::synth::Yuv420>,
    usize,
    CpuStats,
) {
    let frames = synth::video(48, 32, 4, 3);
    let mut sink = CountingSink::new();
    let (out, len) = {
        let mut p = Program::new(&mut sink);
        let ev = encode(&mut p, &frames, &gop_ibbp(), MpegParams::default(), v);
        let out = decode(&mut p, &ev, v);
        (out, ev.len)
    };
    (frames, out, len, sink.finish())
}

#[test]
fn ibbp_roundtrip_reconstructs_all_frames() {
    let (src, out, len, _) = roundtrip(Variant::SCALAR);
    assert_eq!(out.len(), 4);
    assert!(len > 100 && len < 48 * 32 * 6, "stream size {len}");
    for (i, (s, d)) in src.iter().zip(&out).enumerate() {
        assert_eq!((d.width, d.height), (48, 32));
        let psnr = s.psnr_y(d);
        assert!(psnr > 22.0, "frame {i} PSNR {psnr:.1} dB");
    }
}

#[test]
fn inter_frames_compress_better_than_intra() {
    let frames = synth::video(48, 32, 4, 3);
    let mut sink = CountingSink::new();
    let mut p = Program::new(&mut sink);
    let ibbp = encode(
        &mut p,
        &frames,
        &gop_ibbp(),
        MpegParams::default(),
        Variant::SCALAR,
    );
    let all_i = encode(
        &mut p,
        &frames,
        &[FrameType::I; 4],
        MpegParams::default(),
        Variant::SCALAR,
    );
    assert!(
        ibbp.len < all_i.len,
        "motion compensation pays: {} vs {}",
        ibbp.len,
        all_i.len
    );
}

#[test]
fn vis_encoder_matches_scalar_quality_with_fewer_instructions() {
    let (src, s_out, _, cs) = roundtrip(Variant::SCALAR);
    let (_, v_out, _, cv) = roundtrip(Variant::VIS);
    for i in 0..4 {
        let ps = src[i].psnr_y(&s_out[i]);
        let pv = src[i].psnr_y(&v_out[i]);
        assert!((ps - pv).abs() < 3.0, "frame {i}: {ps:.1} vs {pv:.1} dB");
    }
    // pdist-powered motion estimation dominates the win (paper: 32.7%).
    assert!(
        (cv.retired as f64) < 0.75 * cs.retired as f64,
        "VIS cuts mpeg instructions: {} vs {}",
        cv.retired,
        cs.retired
    );
    // The scalar SAD's abs branches mispredict heavily (paper: 27%).
    assert!(cs.mispredict_rate() > 0.05, "{}", cs.mispredict_rate());
    assert!(
        cv.mispredict_rate() < cs.mispredict_rate(),
        "{} vs {}",
        cv.mispredict_rate(),
        cs.mispredict_rate()
    );
}

#[test]
fn scalar_stream_decodes_equivalently_under_vis_decoder() {
    // mpeg-dec VIS decodes the same bits. The packed MediaLib-style
    // IDCT rounds within ±2 of the scalar islow (paper §2.3.2:
    // "visually imperceptible"), so the decoders agree to high PSNR
    // rather than bit-exactly.
    let frames = synth::video(48, 32, 4, 7);
    let mut sink = CountingSink::new();
    let mut p = Program::new(&mut sink);
    let ev = encode(
        &mut p,
        &frames,
        &gop_ibbp(),
        MpegParams::default(),
        Variant::SCALAR,
    );
    let a = decode(&mut p, &ev, Variant::SCALAR);
    let b = decode(&mut p, &ev, Variant::VIS);
    for (fa, fb) in a.iter().zip(&b) {
        let psnr = fa.psnr_y(fb);
        assert!(psnr > 40.0, "decoder variants agree visually: {psnr:.1} dB");
    }
}

#[test]
fn still_video_makes_p_and_b_frames_nearly_free() {
    // Identical frames: everything inter-codes to zero residual.
    let f = synth::video(32, 32, 1, 1).remove(0);
    let frames = vec![f.clone(), f.clone(), f.clone(), f];
    let mut sink = CountingSink::new();
    let mut p = Program::new(&mut sink);
    let ev = encode(
        &mut p,
        &frames,
        &gop_ibbp(),
        MpegParams::default(),
        Variant::SCALAR,
    );
    let only_i = encode(
        &mut p,
        &frames[..1],
        &[FrameType::I],
        MpegParams::default(),
        Variant::SCALAR,
    );
    // Each extra still frame costs only per-MB mode/MV/EOB overhead
    // (~5 bytes per macroblock).
    assert!(
        ev.len < only_i.len * 2,
        "3 extra still frames cost little: {} vs {}",
        ev.len,
        only_i.len
    );
    let out = decode(&mut p, &ev, Variant::SCALAR);
    for d in &out {
        assert!(frames[0].psnr_y(d) > 28.0);
    }
}
