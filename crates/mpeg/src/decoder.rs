//! The emitted MPEG-2-style decoder (`mpeg-dec`).

use media_image::synth::Yuv420;
use media_jpeg::bits::BitReaderState;
use media_jpeg::block::{idct, store_block, SimQuant, VisIdct};
use visim_cpu::SimSink;
use visim_trace::Program;

use crate::encoder::{block_geometry, materialize_pred, pred_source, EncodedVideo, Scratch};
use crate::frame::SimFrame;
use crate::mb::{inter_quant, intra_quant, MbMode};
use crate::motion::{mc_copy_block, recon_block};
use crate::vlc::VideoTables;
use crate::{FrameType, Variant};

/// Decode a stream produced by [`crate::encode`]; returns frames in
/// display order.
pub fn decode<S: SimSink>(p: &mut Program<S>, ev: &EncodedVideo, v: Variant) -> Vec<Yuv420> {
    // Emitted header parse.
    let hb = p.li(ev.addr as i64);
    let m0 = p.load_u8(&hb, 0);
    let m1 = p.load_u8(&hb, 1);
    assert_eq!((m0.value(), m1.value()), (b'V' as i64, b'M' as i64));
    let whi = p.load_u8(&hb, 2);
    let wlo = p.load_u8(&hb, 3);
    let t = p.muli(&whi, 256);
    let wv = p.add(&t, &wlo);
    let hhi = p.load_u8(&hb, 4);
    let hlo = p.load_u8(&hb, 5);
    let t = p.muli(&hhi, 256);
    let hv = p.add(&t, &hlo);
    let nf = p.load_u8(&hb, 6);
    let qs = p.load_u8(&hb, 7);
    let (w, h) = (wv.value() as usize, hv.value() as usize);
    let nframes = nf.value() as usize;
    let qscale = qs.value() as u32;

    let tables = VideoTables::install(p);
    let iq = SimQuant::install(p, &intra_quant(qscale));
    let nq = SimQuant::install(p, &inter_quant(qscale));
    let scratch = Scratch::alloc(p);
    let vidct = if v.vis { Some(VisIdct::new(p)) } else { None };
    let mut reader = BitReaderState::new(p, ev.addr + 8);

    let mut ref_old: Option<SimFrame> = None;
    let mut ref_new: Option<SimFrame> = None;
    let mut decoded: Vec<SimFrame> = Vec::with_capacity(nframes);
    let mut ftypes: Vec<FrameType> = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        let tb = reader.get(p, 8);
        let ftype = match tb.value() {
            0 => FrameType::I,
            1 => FrameType::P,
            2 => FrameType::B,
            other => panic!("corrupt frame type {other}"),
        };
        let recon = SimFrame::alloc(p, w, h);
        let (fwd, bwd) = match ftype {
            FrameType::I => (None, None),
            FrameType::P => (ref_new.as_ref(), None),
            FrameType::B => (ref_old.as_ref(), ref_new.as_ref()),
        };
        decode_frame(
            p,
            &recon,
            fwd,
            bwd,
            ftype,
            &tables,
            &iq,
            &nq,
            &scratch,
            &vidct,
            &mut reader,
            v,
        );
        if ftype != FrameType::B {
            ref_old = ref_new;
            ref_new = Some(recon);
        }
        decoded.push(recon);
        ftypes.push(ftype);
    }

    // Reorder from encode order back to display order.
    let disp = display_order(&ftypes);
    disp.iter()
        .map(|&enc_ix| decoded[enc_ix].to_yuv(p))
        .collect()
}

/// Invert the encoder's reordering: given encode-order frame types,
/// return the encode-order index of each display position. A run of B
/// frames in encode order displays *before* the reference that
/// immediately precedes it.
fn display_order(enc: &[FrameType]) -> Vec<usize> {
    let mut disp: Vec<usize> = Vec::new();
    for (e, t) in enc.iter().enumerate() {
        if *t == FrameType::B {
            let pos = disp
                .iter()
                .rposition(|&ix| enc[ix] != FrameType::B)
                .unwrap_or(disp.len());
            disp.insert(pos, e);
        } else {
            disp.push(e);
        }
    }
    disp
}

#[allow(clippy::too_many_arguments)]
fn decode_frame<S: SimSink>(
    p: &mut Program<S>,
    recon: &SimFrame,
    fwd: Option<&SimFrame>,
    bwd: Option<&SimFrame>,
    ftype: FrameType,
    tables: &VideoTables,
    iq: &SimQuant,
    nq: &SimQuant,
    scratch: &Scratch,
    vidct: &Option<VisIdct>,
    r: &mut BitReaderState,
    v: Variant,
) {
    let (mbw, mbh) = (recon.y.w / 16, recon.y.h / 16);
    let mut pred_mv = (0i64, 0i64);
    for mby in 0..mbh {
        for mbx in 0..mbw {
            let mut mode = MbMode::Intra;
            let mut fmv = (0i64, 0i64);
            let mut bmv = (0i64, 0i64);
            if ftype != FrameType::I {
                let mb = r.get(p, 2);
                mode = MbMode::from_bits(mb.value());
                if mode.uses_fwd() {
                    let dx = tables.get_signed(p, r);
                    let dy = tables.get_signed(p, r);
                    fmv = (pred_mv.0 + dx.value(), pred_mv.1 + dy.value());
                    pred_mv = fmv;
                }
                if mode.uses_bwd() {
                    let dx = tables.get_signed(p, r);
                    let dy = tables.get_signed(p, r);
                    bmv = (dx.value(), dy.value());
                }
                if mode == MbMode::Intra {
                    pred_mv = (0, 0);
                }
            }

            // Materialize fractional / bidirectional predictions.
            let mat = materialize_pred(p, mode, fwd, bwd, fmv, bmv, mbx, mby, scratch, v);

            for blk in 0..6usize {
                let (_, rec_plane, bx, by) = block_geometry(recon, recon, mbx, mby, blk);
                if mode == MbMode::Intra {
                    let coef = tables.get_block(p, r, iq);
                    if let Some(ctx) = vidct {
                        ctx.run(p, &coef, rec_plane, bx, by);
                    } else {
                        let px = idct(p, &coef);
                        store_block(p, rec_plane, bx, by, &px);
                    }
                } else {
                    let coef = tables.get_block(p, r, nq);
                    let (pred_plane, px_off, py_off) =
                        pred_source(mode, fwd, bwd, scratch, fmv, bmv, mbx, mby, blk, mat);
                    if coef.iter().all(|c| c.value() == 0) {
                        // Uncoded block: pure motion-compensation copy.
                        mc_copy_block(p, rec_plane, bx, by, &pred_plane, px_off, py_off, v);
                    } else {
                        let res = idct(p, &coef);
                        recon_block(p, rec_plane, bx, by, &pred_plane, px_off, py_off, &res);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_order_inverts_encode_order() {
        use FrameType::*;
        // Display IBBP encodes as IPBB; inverting recovers 0,2,3,1.
        assert_eq!(display_order(&[I, P, B, B]), vec![0, 2, 3, 1]);
        assert_eq!(display_order(&[I, P, P]), vec![0, 1, 2]);
        assert_eq!(display_order(&[I, P, B]), vec![0, 2, 1]);
    }
}
