//! Variable-length coding for the MPEG-2-style bitstream.
//!
//! Uses canonical Huffman tables (the JPEG Annex-K defaults) for the
//! run/size and category symbols — structurally equivalent VLC work to
//! the MSSG tables, with the same serial bit-twiddling the paper finds
//! VIS-inapplicable.

use media_dsp::huffman::{ac_luma, dc_luma};
use media_jpeg::bits::{BitReaderState, BitWriterState};
use media_jpeg::block::SimQuant;
use media_jpeg::huff::{extend, extend_bits, SimCategory, SimHuff};
use visim_cpu::SimSink;
use visim_trace::{Cond, Program, Val};

/// Entropy tables for the video codec.
#[derive(Debug, Clone, Copy)]
pub struct VideoTables {
    /// Category-style table (motion vectors, DC).
    pub dc: SimHuff,
    /// Run/size table (coefficients).
    pub ac: SimHuff,
    /// Magnitude categories.
    pub cat: SimCategory,
}

impl VideoTables {
    /// Install the tables in simulated memory.
    pub fn install<S: SimSink>(p: &mut Program<S>) -> Self {
        VideoTables {
            dc: SimHuff::install(p, &dc_luma()),
            ac: SimHuff::install(p, &ac_luma()),
            cat: SimCategory::install(p),
        }
    }

    /// Emit a signed value (motion-vector component or DC difference) as
    /// category + extend bits.
    pub fn put_signed<S: SimSink>(&self, p: &mut Program<S>, w: &mut BitWriterState, v: &Val) {
        let (cat, _) = self.cat.of(p, v);
        self.dc.encode(p, w, &cat);
        if cat.value() > 0 {
            let bits = extend_bits(p, v, &cat);
            w.put(p, &bits, &cat);
        }
    }

    /// Emit the decode of a [`VideoTables::put_signed`] value.
    pub fn get_signed<S: SimSink>(&self, p: &mut Program<S>, r: &mut BitReaderState) -> Val {
        let cat = self.dc.decode(p, r);
        let c = cat.value();
        let bits = r.get(p, c);
        extend(p, &bits, c)
    }

    /// Emit run/size coding of 64 zig-zag levels (DC included — inter
    /// blocks code all coefficients uniformly). Returns true if any
    /// coefficient was non-zero.
    pub fn put_block<S: SimSink>(
        &self,
        p: &mut Program<S>,
        w: &mut BitWriterState,
        levels: &[Val],
    ) -> bool {
        let mut run = p.li(0);
        let mut any = false;
        let mut pending_zeros = false;
        for level in levels {
            if p.bcond_i(Cond::Eq, level, 0, false) {
                run = p.addi(&run, 1);
                pending_zeros = true;
                continue;
            }
            while run.value() >= 16 {
                let zrl = p.li(0xf0);
                self.ac.encode(p, w, &zrl);
                run = p.addi(&run, -16);
            }
            let (cat, _) = self.cat.of(p, level);
            let r4 = p.shli(&run, 4);
            let sym = p.or(&r4, &cat);
            self.ac.encode(p, w, &sym);
            let bits = extend_bits(p, level, &cat);
            w.put(p, &bits, &cat);
            run = p.li(0);
            any = true;
            pending_zeros = false;
        }
        if pending_zeros {
            let eob = p.li(0x00);
            self.ac.encode(p, w, &eob);
        }
        any
    }

    /// Emit the decode of a [`VideoTables::put_block`] block straight
    /// into dequantized raster coefficients.
    pub fn get_block<S: SimSink>(
        &self,
        p: &mut Program<S>,
        r: &mut BitReaderState,
        q: &SimQuant,
    ) -> Vec<Val> {
        let zero = p.li(0);
        let mut coef = vec![zero; 64];
        let mut k = 0usize;
        while k <= 63 {
            let sym = self.ac.decode(p, r);
            let run = p.shri(&sym, 4);
            let size = p.andi(&sym, 15);
            if size.value() == 0 {
                if run.value() == 15 {
                    k += 16; // ZRL
                    continue;
                }
                break; // EOB
            }
            k += run.value() as usize;
            let bits = r.get(p, size.value());
            let level = extend(p, &bits, size.value());
            let (raster, val) = q.dequant_one(p, k, &level);
            coef[raster] = val;
            k += 1;
        }
        coef
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_dsp::quant::MPEG_INTRA_Q;
    use visim_cpu::CountingSink;
    use visim_trace::Program;

    #[test]
    fn signed_values_roundtrip() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let t = VideoTables::install(&mut p);
        let buf = p.mem_mut().alloc(512, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        let vals = [-700i64, -16, -1, 0, 1, 5, 120, 900];
        for &v in &vals {
            let vv = p.li(v);
            t.put_signed(&mut p, &mut w, &vv);
        }
        w.finish(&mut p);
        let mut r = BitReaderState::new(&mut p, buf);
        for &v in &vals {
            assert_eq!(t.get_signed(&mut p, &mut r).value(), v);
        }
    }

    #[test]
    fn blocks_roundtrip_through_quantized_levels() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let t = VideoTables::install(&mut p);
        let q = SimQuant::install(&mut p, &MPEG_INTRA_Q);
        let buf = p.mem_mut().alloc(1024, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        // A sparse zig-zag level pattern (levels, positions).
        let mut levels = vec![0i64; 64];
        levels[0] = 12;
        levels[1] = -3;
        levels[20] = 5; // after a long zero run
        levels[63] = -1; // last position, no EOB needed
        let lv: Vec<Val> = levels.iter().map(|&x| p.li(x)).collect();
        let any = t.put_block(&mut p, &mut w, &lv);
        assert!(any);
        w.finish(&mut p);
        let mut r = BitReaderState::new(&mut p, buf);
        let coef = t.get_block(&mut p, &mut r, &q);
        for (k, &level) in levels.iter().enumerate() {
            let raster = media_dsp::ZIGZAG[k];
            let want = level * MPEG_INTRA_Q[raster] as i64;
            assert_eq!(coef[raster].value(), want, "zz {k}");
        }
    }

    #[test]
    fn all_zero_block_is_just_an_eob() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let t = VideoTables::install(&mut p);
        let q = SimQuant::install(&mut p, &MPEG_INTRA_Q);
        let buf = p.mem_mut().alloc(64, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        let zero = p.li(0);
        let lv = vec![zero; 64];
        let any = t.put_block(&mut p, &mut w, &lv);
        assert!(!any);
        let end = w.finish(&mut p);
        assert!(end - buf <= 2, "EOB only: {} bytes", end - buf);
        let mut r = BitReaderState::new(&mut p, buf);
        let coef = t.get_block(&mut p, &mut r, &q);
        assert!(coef.iter().all(|c| c.value() == 0));
    }
}
