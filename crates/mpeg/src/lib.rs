//! Emitter-based MPEG-2-style video codec: the paper's `mpeg-enc` and
//! `mpeg-dec` benchmarks.
//!
//! Follows the structure of the MPEG Software Simulation Group encoder
//! the paper uses: an I-B-B-P group of pictures over 4:2:0 YUV frames,
//! full-search block motion estimation on 16×16 macroblocks (the
//! compute-dominant phase, §2.1.3), forward/backward/bidirectional
//! prediction for B pictures, the same "islow" DCT/quantization substrate
//! as the JPEG codec, run/level entropy coding, and a full encoder-side
//! reconstruction loop so references match the decoder bit-exactly.
//!
//! Motion vectors carry half-pel precision with the standard bilinear
//! interpolation (2-point averages on half-pel rows/columns, 4-point on
//! the diagonal). Simplifications vs. MPEG-2 proper (documented in
//! DESIGN.md): a compact private bitstream framing, JPEG-style
//! canonical Huffman tables for the run/level and motion-vector symbols
//! (structurally equivalent VLC work), and per-frame rather than
//! per-slice DC prediction reset.
//!
//! The VIS variant uses `pdist` for SAD (the paper's 48-instructions-to-
//! one observation), packed residual/reconstruction arithmetic, and
//! `fpack16` saturation; scalar code uses the branchy equivalents.

pub mod frame;
pub mod mb;
pub mod motion;
pub mod vlc;

mod decoder;
mod encoder;

pub use decoder::decode;
pub use encoder::{encode, EncodedVideo, MpegParams};
pub use frame::SimFrame;
pub use media_kernels::Variant;

/// Picture coding types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Intra-coded.
    I,
    /// Forward-predicted.
    P,
    /// Bidirectionally predicted.
    B,
}

/// The paper's 4-frame I-B-B-P pattern in display order.
pub fn gop_ibbp() -> Vec<FrameType> {
    vec![FrameType::I, FrameType::B, FrameType::B, FrameType::P]
}

/// Convert display order to encode order (references before the B
/// frames that use them): returns indices into the display sequence.
pub fn encode_order(gop: &[FrameType]) -> Vec<usize> {
    let mut order = Vec::with_capacity(gop.len());
    let mut pending_b = Vec::new();
    for (i, t) in gop.iter().enumerate() {
        match t {
            FrameType::B => pending_b.push(i),
            _ => {
                order.push(i);
                order.append(&mut pending_b);
            }
        }
    }
    // Trailing Bs (no closing reference) are appended as-is.
    order.append(&mut pending_b);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibbp_reorders_to_ipbb() {
        assert_eq!(encode_order(&gop_ibbp()), vec![0, 3, 1, 2]);
    }

    #[test]
    fn all_intra_keeps_order() {
        let gop = vec![FrameType::I, FrameType::I, FrameType::P];
        assert_eq!(encode_order(&gop), vec![0, 1, 2]);
    }

    #[test]
    fn trailing_b_is_flushed() {
        let gop = vec![FrameType::I, FrameType::B];
        assert_eq!(encode_order(&gop), vec![0, 1]);
    }
}
