//! Motion estimation and compensation.
//!
//! Full-search block matching on 16×16 luma macroblocks with the
//! row-wise early exit real encoders use. The scalar SAD uses the
//! branchy absolute value (the 27%-misprediction code of §3.2.2); the
//! VIS SAD uses `pdist`, collapsing ~48 instructions into one per eight
//! pixels.

// The block-copy/interpolation helpers all take the same flat geometry
// bundle (source plane + x/y + width/height + destination + variant);
// packing it into a struct would only rename the arguments.
#![allow(clippy::too_many_arguments)]

use media_jpeg::SimPlane;
use visim_cpu::SimSink;
use visim_trace::{Cond, Program, Val};

use crate::Variant;

/// SAD of the 16×16 block at `(mx, my)` in `cur` against the block at
/// `(mx+dx, my+dy)` in `refp`, with early exit once the running total
/// passes `best`. Returns the (host) SAD value, or `None` if aborted.
pub fn sad_16x16<S: SimSink>(
    p: &mut Program<S>,
    cur: &SimPlane,
    refp: &SimPlane,
    mx: usize,
    my: usize,
    dx: i64,
    dy: i64,
    best: i64,
    v: Variant,
) -> Option<i64> {
    let cbase = p.li(cur.row(my) as i64 + mx as i64);
    let rbase = p.li(refp.row((my as i64 + dy) as usize) as i64 + mx as i64 + dx);
    let bestv = p.li(best);
    let mut acc = p.li(0);
    let wc = cur.w as i64;
    let wr = refp.w as i64;
    for row in 0..16i64 {
        if v.vis {
            // Reference rows are unaligned in general: three aligned
            // loads plus faligndata windows, then pdist.
            let c0 = p.loadv(&cbase, row * wc);
            let c1 = p.loadv(&cbase, row * wc + 8);
            let raddr = p.addi(&rbase, row * wr);
            let al = p.valignaddr(&raddr, 0);
            let d0 = p.loadv(&al, 0);
            let d1 = p.loadv(&al, 8);
            let d2 = p.loadv(&al, 16);
            let r0 = p.valigndata(&d0, &d1);
            let r1 = p.valigndata(&d1, &d2);
            acc = p.vpdist(&c0, &r0, &acc);
            acc = p.vpdist(&c1, &r1, &acc);
        } else {
            for c in 0..16i64 {
                let a = p.load_u8(&cbase, row * wc + c);
                let b = p.load_u8(&rbase, row * wr + c);
                let mut d = p.sub(&a, &b);
                if p.bcond_i(Cond::Lt, &d, 0, false) {
                    let z = p.li(0);
                    d = p.sub(&z, &d);
                }
                acc = p.add(&acc, &d);
            }
        }
        // Early exit: one emitted compare per row.
        if p.bcond(Cond::Ge, &acc, &bestv, false) {
            return None;
        }
    }
    Some(acc.value())
}

/// Exhaustive motion search over `±range` (clamped to the frame).
/// Returns `(dx, dy, sad)` of the best full-pel match.
pub fn motion_search<S: SimSink>(
    p: &mut Program<S>,
    cur: &SimPlane,
    refp: &SimPlane,
    mbx: usize,
    mby: usize,
    range: i64,
    v: Variant,
) -> (i64, i64, i64) {
    let (mx, my) = (mbx * 16, mby * 16);
    let mut best = i64::MAX;
    let mut bmv = (0i64, 0i64);
    // The zero vector is evaluated first, as real encoders do.
    let try_mv = |p: &mut Program<S>, dx: i64, dy: i64, best: &mut i64, bmv: &mut (i64, i64)| {
        let x = mx as i64 + dx;
        let y = my as i64 + dy;
        if x < 0 || y < 0 || x + 16 > refp.w as i64 || y + 16 > refp.h as i64 {
            return;
        }
        if let Some(s) = sad_16x16(p, cur, refp, mx, my, dx, dy, *best, v) {
            if s < *best {
                *best = s;
                *bmv = (dx, dy);
            }
        }
    };
    try_mv(p, 0, 0, &mut best, &mut bmv);
    for dy in -range..=range {
        for dx in -range..=range {
            if dx == 0 && dy == 0 {
                continue;
            }
            try_mv(p, dx, dy, &mut best, &mut bmv);
        }
    }
    (bmv.0, bmv.1, best)
}

/// Emit a `w×h` copy from `src` at `(sx, sy)` to `dst` at `(dx, dy)`
/// (used for skipped/uncoded macroblocks; VIS uses 8-byte moves).
pub fn copy_rect<S: SimSink>(
    p: &mut Program<S>,
    src: &SimPlane,
    sx: usize,
    sy: usize,
    dst: &SimPlane,
    dx: usize,
    dy: usize,
    w: usize,
    h: usize,
    v: Variant,
) {
    for row in 0..h {
        let sb = p.li(src.row(sy + row) as i64 + sx as i64);
        let db = p.li(dst.row(dy + row) as i64 + dx as i64);
        if v.vis && w.is_multiple_of(8) && (src.row(sy + row) + sx as u64).is_multiple_of(8) {
            for c in (0..w).step_by(8) {
                let x = p.loadv(&sb, c as i64);
                p.storev(&db, c as i64, &x);
            }
        } else {
            for c in 0..w {
                let x = p.load_u8(&sb, c as i64);
                p.store_u8(&db, c as i64, &x);
            }
        }
    }
}

/// Emit the bidirectional average `(a + b + 1) >> 1` of two `w×h`
/// prediction rectangles into `out` at `(0, 0)`.
pub fn avg_rect<S: SimSink>(
    p: &mut Program<S>,
    a: (&SimPlane, i64, i64),
    b: (&SimPlane, i64, i64),
    out: &SimPlane,
    w: usize,
    h: usize,
    v: Variant,
) {
    let round = if v.vis {
        // Lanes hold (a+b+1)<<4; pack at scale 2 yields (a+b+1)>>1.
        p.set_gsr_scale(2);
        Some(p.vli(visim_isa::vis::pack16([1 << 4; 4])))
    } else {
        None
    };
    for row in 0..h {
        let ab = p.li(a.0.row((a.2 + row as i64) as usize) as i64 + a.1);
        let bb = p.li(b.0.row((b.2 + row as i64) as usize) as i64 + b.1);
        let ob = p.li(out.row(row) as i64);
        if v.vis && w.is_multiple_of(8) {
            for c in (0..w as i64).step_by(8) {
                // Unaligned-safe windowed loads for both references.
                let aa = p.addi(&ab, c);
                let al = p.valignaddr(&aa, 0);
                let a0 = p.loadv(&al, 0);
                let a1 = p.loadv(&al, 8);
                let av = p.valigndata(&a0, &a1);
                let ba = p.addi(&bb, c);
                let bl = p.valignaddr(&ba, 0);
                let b0 = p.loadv(&bl, 0);
                let b1 = p.loadv(&bl, 8);
                let bv = p.valigndata(&b0, &b1);
                let sl = {
                    let x = p.vexpand_lo(&av);
                    let y = p.vexpand_lo(&bv);
                    p.vadd16(&x, &y)
                };
                let sh = {
                    let x = p.vexpand_hi(&av);
                    let y = p.vexpand_hi(&bv);
                    p.vadd16(&x, &y)
                };
                let one = round.as_ref().expect("vis rounding constant");
                let sl = p.vadd16(&sl, one);
                let sh = p.vadd16(&sh, one);
                let m = p.vpack16_pair(&sl, &sh);
                p.storev(&ob, c, &m);
            }
        } else {
            for c in 0..w as i64 {
                let x = p.load_u8(&ab, c);
                let y = p.load_u8(&bb, c);
                let s = p.add(&x, &y);
                let s = p.addi(&s, 1);
                let m = p.shri(&s, 1);
                p.store_u8(&ob, c, &m);
            }
        }
    }
}

/// Emit the inter residual `cur - pred` for an 8×8 block: `cur` block at
/// `(bx*8, by*8)`, prediction at `(px, py)` of `pred`.
pub fn residual_block<S: SimSink>(
    p: &mut Program<S>,
    cur: &SimPlane,
    bx: usize,
    by: usize,
    pred: &SimPlane,
    px: i64,
    py: i64,
) -> Vec<Val> {
    let mut out = Vec::with_capacity(64);
    for r in 0..8i64 {
        let cb = p.li(cur.row(by * 8 + r as usize) as i64 + (bx * 8) as i64);
        let pb = p.li(pred.row((py + r) as usize) as i64 + px);
        for c in 0..8i64 {
            let a = p.load_u8(&cb, c);
            let b = p.load_u8(&pb, c);
            out.push(p.sub(&a, &b));
        }
    }
    out
}

/// Emit inter reconstruction: `plane[block] = clamp(pred + residual)`.
pub fn recon_block<S: SimSink>(
    p: &mut Program<S>,
    plane: &SimPlane,
    bx: usize,
    by: usize,
    pred: &SimPlane,
    px: i64,
    py: i64,
    residual: &[Val],
) {
    assert_eq!(residual.len(), 64);
    for r in 0..8i64 {
        let ob = p.li(plane.row(by * 8 + r as usize) as i64 + (bx * 8) as i64);
        let pb = p.li(pred.row((py + r) as usize) as i64 + px);
        for c in 0..8i64 {
            let b = p.load_u8(&pb, c);
            let s = p.add(&b, &residual[(r * 8 + c) as usize]);
            let s = media_jpeg::color::clamp255(p, &s);
            p.store_u8(&ob, c, &s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    use crate::frame::SimFrame;

    #[test]
    fn sad_finds_the_pan_vector() {
        // The synthetic video pans at (+2, +1); frame N matched against
        // frame N+1 should prefer (dx, dy) = (2, 1).
        let frames = synth::video(64, 32, 2, 5);
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let f0 = SimFrame::from_yuv(&mut p, &frames[0]);
        let f1 = SimFrame::from_yuv(&mut p, &frames[1]);
        // Pick a background MB away from the moving block.
        let (dx, dy, sad) = motion_search(&mut p, &f1.y, &f0.y, 0, 0, 3, Variant::SCALAR);
        // frame1(x, y) == frame0(x+2, y+1): the pan vector is (+2, +1).
        assert_eq!((dx, dy), (2, 1), "pan vector recovered (sad {sad})");
    }

    #[test]
    fn vis_sad_agrees_with_scalar_and_is_cheaper() {
        let frames = synth::video(64, 32, 2, 7);
        let run = |v: Variant| {
            let mut sink = CountingSink::new();
            let r = {
                let mut p = Program::new(&mut sink);
                let f0 = SimFrame::from_yuv(&mut p, &frames[0]);
                let f1 = SimFrame::from_yuv(&mut p, &frames[1]);
                sad_16x16(&mut p, &f1.y, &f0.y, 16, 0, 1, 1, i64::MAX, v)
            };
            (r, sink.finish())
        };
        let (s, cs) = run(Variant::SCALAR);
        let (vv, cv) = run(Variant::VIS);
        assert_eq!(s, vv, "pdist SAD is exact");
        assert!(
            cv.retired * 4 < cs.retired,
            "pdist collapses the SAD loop: {} vs {}",
            cv.retired,
            cs.retired
        );
    }

    #[test]
    fn early_exit_aborts_bad_candidates() {
        let frames = synth::video(64, 32, 2, 7);
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let f0 = SimFrame::from_yuv(&mut p, &frames[0]);
        let f1 = SimFrame::from_yuv(&mut p, &frames[1]);
        let r = sad_16x16(&mut p, &f1.y, &f0.y, 16, 8, 3, 3, 10, Variant::SCALAR);
        assert!(r.is_none(), "tiny budget must abort");
    }

    #[test]
    fn avg_rect_matches_scalar_mean() {
        let frames = synth::video(32, 32, 2, 9);
        for v in [Variant::SCALAR, Variant::VIS] {
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let f0 = SimFrame::from_yuv(&mut p, &frames[0]);
            let f1 = SimFrame::from_yuv(&mut p, &frames[1]);
            let scratch = SimPlane::alloc(&mut p, 16, 16);
            avg_rect(&mut p, (&f0.y, 3, 1), (&f1.y, 0, 0), &scratch, 16, 16, v);
            let out = scratch.to_vec(&p);
            for r in 0..16 {
                for c in 0..16 {
                    let a = frames[0].y[(1 + r) * 32 + 3 + c] as u32;
                    let b = frames[1].y[r * 32 + c] as u32;
                    assert_eq!(out[r * 16 + c] as u32, (a + b + 1) >> 1, "{v:?} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn copy_rect_moves_blocks() {
        let frames = synth::video(32, 16, 1, 2);
        for v in [Variant::SCALAR, Variant::VIS] {
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let f0 = SimFrame::from_yuv(&mut p, &frames[0]);
            let dst = SimPlane::alloc(&mut p, 32, 16);
            copy_rect(&mut p, &f0.y, 8, 0, &dst, 8, 0, 16, 16, v);
            let out = dst.to_vec(&p);
            for r in 0..16 {
                for c in 8..24 {
                    assert_eq!(out[r * 32 + c], frames[0].y[r * 32 + c], "{v:?}");
                }
            }
        }
    }
}

/// Emit the motion-compensation copy of an uncoded 8×8 block (all
/// residual coefficients zero): `plane[block] = pred`. Real decoders
/// special-case this; the VIS path is an aligned-window 8-byte move.
pub fn mc_copy_block<S: SimSink>(
    p: &mut Program<S>,
    plane: &SimPlane,
    bx: usize,
    by: usize,
    pred: &SimPlane,
    px: i64,
    py: i64,
    v: Variant,
) {
    for r in 0..8i64 {
        let ob = p.li(plane.row(by * 8 + r as usize) as i64 + (bx * 8) as i64);
        let pb = p.li(pred.row((py + r) as usize) as i64 + px);
        if v.vis {
            let al = p.valignaddr(&pb, 0);
            let d0 = p.loadv(&al, 0);
            let d1 = p.loadv(&al, 8);
            let w = p.valigndata(&d0, &d1);
            p.storev(&ob, 0, &w);
        } else {
            for c in 0..8i64 {
                let x = p.load_u8(&pb, c);
                p.store_u8(&ob, c, &x);
            }
        }
    }
}

/// Materialize a `w×h` half-pel prediction rectangle into `out` at
/// `(0, 0)`. `(x2, y2)` are half-pel coordinates into `src` (MPEG-2
/// §7.6 bilinear rules: 2-point averages on half-pel rows/columns, a
/// 4-point average on the diagonal, `+1`/`+2` rounding).
pub fn interp_rect<S: SimSink>(
    p: &mut Program<S>,
    src: &SimPlane,
    x2: i64,
    y2: i64,
    out: &SimPlane,
    w: usize,
    h: usize,
    v: Variant,
) {
    let (bx, by) = (x2 >> 1, y2 >> 1);
    let (fx, fy) = (x2 & 1, y2 & 1);
    match (fx, fy) {
        (0, 0) => copy_rect(p, src, bx as usize, by as usize, out, 0, 0, w, h, v),
        (1, 0) => avg_rect(p, (src, bx, by), (src, bx + 1, by), out, w, h, v),
        (0, 1) => avg_rect(p, (src, bx, by), (src, bx, by + 1), out, w, h, v),
        _ => avg4_rect(p, src, bx, by, out, w, h, v),
    }
}

/// The diagonal half-pel case: `(a + b + c + d + 2) / 4` over the 2×2
/// neighborhood.
fn avg4_rect<S: SimSink>(
    p: &mut Program<S>,
    src: &SimPlane,
    bx: i64,
    by: i64,
    out: &SimPlane,
    w: usize,
    h: usize,
    v: Variant,
) {
    let round = if v.vis {
        // Lanes hold (a+b+c+d+2)<<4; pack at scale 1 divides by 4.
        p.set_gsr_scale(1);
        Some(p.vli(visim_isa::vis::pack16([2 << 4; 4])))
    } else {
        None
    };
    for row in 0..h {
        let r0 = p.li(src.row((by + row as i64) as usize) as i64 + bx);
        let r1 = p.li(src.row((by + row as i64 + 1) as usize) as i64 + bx);
        let ob = p.li(out.row(row) as i64);
        if let Some(two) = &round {
            for c in (0..w as i64).step_by(8) {
                let mut sums = Vec::with_capacity(2);
                for base in [&r0, &r1] {
                    let aa = p.addi(base, c);
                    let al = p.valignaddr(&aa, 0);
                    let d0 = p.loadv(&al, 0);
                    let d1 = p.loadv(&al, 8);
                    let cur = p.valigndata(&d0, &d1);
                    let ab = p.addi(base, c + 1);
                    let al = p.valignaddr(&ab, 0);
                    let e0 = p.loadv(&al, 0);
                    let e1 = p.loadv(&al, 8);
                    let nxt = p.valigndata(&e0, &e1);
                    let sl = {
                        let x = p.vexpand_lo(&cur);
                        let y = p.vexpand_lo(&nxt);
                        p.vadd16(&x, &y)
                    };
                    let sh = {
                        let x = p.vexpand_hi(&cur);
                        let y = p.vexpand_hi(&nxt);
                        p.vadd16(&x, &y)
                    };
                    sums.push((sl, sh));
                }
                let sl = p.vadd16(&sums[0].0, &sums[1].0);
                let sl = p.vadd16(&sl, two);
                let sh = p.vadd16(&sums[0].1, &sums[1].1);
                let sh = p.vadd16(&sh, two);
                let m = p.vpack16_pair(&sl, &sh);
                p.storev(&ob, c, &m);
            }
        } else {
            for c in 0..w as i64 {
                let a = p.load_u8(&r0, c);
                let b = p.load_u8(&r0, c + 1);
                let cc = p.load_u8(&r1, c);
                let d = p.load_u8(&r1, c + 1);
                let s = p.add(&a, &b);
                let s2 = p.add(&cc, &d);
                let s = p.add(&s, &s2);
                let s = p.addi(&s, 2);
                let m = p.shri(&s, 2);
                p.store_u8(&ob, c, &m);
            }
        }
    }
}

/// Refine a full-pel vector to half-pel precision: evaluate the eight
/// half-pel neighbours of `(2*dx, 2*dy)` by materializing each
/// candidate prediction into `tmp` and measuring its SAD. Returns the
/// best vector in half-pel units and its SAD.
#[allow(clippy::too_many_arguments)]
pub fn refine_halfpel<S: SimSink>(
    p: &mut Program<S>,
    cur: &SimPlane,
    refp: &SimPlane,
    mbx: usize,
    mby: usize,
    full_mv: (i64, i64),
    full_sad: i64,
    tmp: &SimPlane,
    v: Variant,
) -> ((i64, i64), i64) {
    let (mx, my) = ((mbx * 16) as i64, (mby * 16) as i64);
    let mut best = ((full_mv.0 * 2, full_mv.1 * 2), full_sad);
    for dy2 in -1..=1i64 {
        for dx2 in -1..=1i64 {
            if dx2 == 0 && dy2 == 0 {
                continue;
            }
            let mv2 = (full_mv.0 * 2 + dx2, full_mv.1 * 2 + dy2);
            let x2 = mx * 2 + mv2.0;
            let y2 = my * 2 + mv2.1;
            // The interpolation window must stay inside the frame.
            let (bx, by) = (x2 >> 1, y2 >> 1);
            let need = |f: i64| 16 + f;
            if bx < 0
                || by < 0
                || bx + need(x2 & 1) > refp.w as i64
                || by + need(y2 & 1) > refp.h as i64
            {
                continue;
            }
            interp_rect(p, refp, x2, y2, tmp, 16, 16, v);
            if let Some(s) = sad_16x16(p, cur, tmp, mx as usize, my as usize, -mx, -my, best.1, v) {
                if s < best.1 {
                    best = (mv2, s);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod halfpel_tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;
    use visim_trace::Program;

    use crate::frame::SimFrame;

    /// interp_rect must implement the MPEG-2 bilinear rules exactly.
    #[test]
    fn interp_matches_host_bilinear() {
        let f = &synth::video(48, 32, 1, 3)[0];
        for v in [Variant::SCALAR, Variant::VIS] {
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let sf = SimFrame::from_yuv(&mut p, f);
            for (x2, y2) in [(8, 4), (9, 4), (8, 5), (9, 5), (17, 11)] {
                let out = SimPlane::alloc(&mut p, 16, 16);
                interp_rect(&mut p, &sf.y, x2, y2, &out, 16, 16, v);
                let got = out.to_vec(&p);
                let s = |x: i64, y: i64| f.y[(y as usize) * 48 + x as usize] as u32;
                for r in 0..16i64 {
                    for c in 0..16i64 {
                        let (bx, by) = (x2 / 2 + c, y2 / 2 + r);
                        let want = match (x2 & 1, y2 & 1) {
                            (0, 0) => s(bx, by),
                            (1, 0) => (s(bx, by) + s(bx + 1, by)).div_ceil(2),
                            (0, 1) => (s(bx, by) + s(bx, by + 1)).div_ceil(2),
                            _ => {
                                (s(bx, by) + s(bx + 1, by) + s(bx, by + 1) + s(bx + 1, by + 1) + 2)
                                    / 4
                            }
                        };
                        assert_eq!(
                            got[(r * 16 + c) as usize] as u32,
                            want,
                            "{v:?} ({x2},{y2}) sample ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    /// A frame built by half-pel-shifting another must be matched with a
    /// fractional vector (and a much lower SAD than any full-pel one).
    #[test]
    fn refinement_finds_half_pel_motion() {
        let f0 = &synth::video(64, 32, 1, 5)[0];
        // f1(x, y) = (f0(x, y) + f0(x+1, y) + 1) / 2: a pure dx2 = +1.
        let mut f1 = f0.clone();
        for y in 0..32 {
            for x in 0..63 {
                let a = f0.y[y * 64 + x] as u32;
                let b = f0.y[y * 64 + x + 1] as u32;
                f1.y[y * 64 + x] = (a + b).div_ceil(2) as u8;
            }
        }
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let r0 = SimFrame::from_yuv(&mut p, f0);
        let r1 = SimFrame::from_yuv(&mut p, &f1);
        let tmp = SimPlane::alloc(&mut p, 16, 16);
        let (dx, dy, full_sad) = motion_search(&mut p, &r1.y, &r0.y, 1, 0, 2, Variant::SCALAR);
        let (mv2, sad2) = refine_halfpel(
            &mut p,
            &r1.y,
            &r0.y,
            1,
            0,
            (dx, dy),
            full_sad,
            &tmp,
            Variant::SCALAR,
        );
        assert_eq!(mv2, (1, 0), "half-pel vector recovered");
        assert_eq!(sad2, 0, "perfect match at half-pel");
        assert!(full_sad > 0, "no full-pel vector is exact");
    }
}
