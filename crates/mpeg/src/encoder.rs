//! The emitted MPEG-2-style encoder (`mpeg-enc`).

use media_image::synth::Yuv420;
use media_jpeg::bits::BitWriterState;
use media_jpeg::block::{fdct, idct, load_block, store_block, SimQuant, VisIdct};
use media_jpeg::SimPlane;
use visim_cpu::SimSink;
use visim_trace::{Program, Val};

use crate::frame::SimFrame;
use crate::mb::{chroma_mv, inter_quant, intra_quant, MbMode};
use crate::motion::{
    avg_rect, interp_rect, mc_copy_block, motion_search, recon_block, refine_halfpel,
    residual_block,
};
use crate::vlc::VideoTables;
use crate::{encode_order, FrameType, Variant};

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpegParams {
    /// Full-search motion range in pels (paper: MPEG defaults; scaled
    /// down here — see DESIGN.md).
    pub search_range: i64,
    /// Quantizer scale (8 = the default matrices unscaled).
    pub qscale: u32,
    /// Per-pixel SAD threshold below which inter coding is chosen.
    pub inter_threshold_per_px: i64,
}

impl Default for MpegParams {
    fn default() -> Self {
        MpegParams {
            search_range: 7,
            qscale: 8,
            inter_threshold_per_px: 20,
        }
    }
}

/// An encoded video stream in simulated memory.
#[derive(Debug, Clone)]
pub struct EncodedVideo {
    /// Stream base address.
    pub addr: u64,
    /// Stream length in bytes.
    pub len: usize,
    /// Luma width.
    pub width: usize,
    /// Luma height.
    pub height: usize,
    /// Display-order frame types.
    pub gop: Vec<FrameType>,
    /// Quantizer scale used.
    pub qscale: u32,
}

/// One macroblock-sized set of prediction planes.
pub(crate) struct ScratchSet {
    pub y: SimPlane,
    pub cb: SimPlane,
    pub cr: SimPlane,
}

impl ScratchSet {
    fn alloc<S: SimSink>(p: &mut Program<S>) -> Self {
        ScratchSet {
            y: SimPlane::alloc(p, 16, 16),
            cb: SimPlane::alloc(p, 8, 8),
            cr: SimPlane::alloc(p, 8, 8),
        }
    }
}

/// Prediction scratch: the final materialized prediction plus the two
/// temporaries used for half-pel refinement and bidirectional blending.
pub(crate) struct Scratch {
    pub pred: ScratchSet,
    pub a: ScratchSet,
    pub b: ScratchSet,
}

impl Scratch {
    pub fn alloc<S: SimSink>(p: &mut Program<S>) -> Self {
        Scratch {
            pred: ScratchSet::alloc(p),
            a: ScratchSet::alloc(p),
            b: ScratchSet::alloc(p),
        }
    }
}

/// Encode `frames` (display order) with the I-B-B-P pattern implied by
/// `gop` (must match `frames.len()`).
pub fn encode<S: SimSink>(
    p: &mut Program<S>,
    frames: &[Yuv420],
    gop: &[FrameType],
    params: MpegParams,
    v: Variant,
) -> EncodedVideo {
    assert_eq!(frames.len(), gop.len());
    let (w, h) = (frames[0].width, frames[0].height);
    assert!(w % 16 == 0 && h % 16 == 0, "frames must be MB-aligned");
    let sim_frames: Vec<SimFrame> = frames.iter().map(|f| SimFrame::from_yuv(p, f)).collect();

    let tables = VideoTables::install(p);
    let iq = SimQuant::install(p, &intra_quant(params.qscale));
    let nq = SimQuant::install(p, &inter_quant(params.qscale));
    let scratch = Scratch::alloc(p);
    let vidct = if v.vis { Some(VisIdct::new(p)) } else { None };

    let cap = w * h * 4 * frames.len() + 4096;
    let out = p.mem_mut().alloc(cap, 8);
    let ob = p.li(out as i64);
    let hdr = [
        b'V' as i64,
        b'M' as i64,
        (w / 256) as i64,
        (w % 256) as i64,
        (h / 256) as i64,
        (h % 256) as i64,
        frames.len() as i64,
        params.qscale as i64,
    ];
    for (i, b) in hdr.iter().enumerate() {
        let bv = p.li(*b);
        p.store_u8(&ob, i as i64, &bv);
    }
    let mut writer = BitWriterState::new(p, out + 8);

    let mut ref_old: Option<SimFrame> = None;
    let mut ref_new: Option<SimFrame> = None;
    for &di in &encode_order(gop) {
        let ftype = gop[di];
        let cur = &sim_frames[di];
        // Emitted frame header: type byte via the bit writer.
        let tb = p.li(match ftype {
            FrameType::I => 0,
            FrameType::P => 1,
            FrameType::B => 2,
        });
        let eight = p.li(8);
        writer.put(p, &tb, &eight);

        let recon = SimFrame::alloc(p, w, h);
        let (fwd, bwd) = match ftype {
            FrameType::I => (None, None),
            FrameType::P => (ref_new.as_ref(), None),
            FrameType::B => (ref_old.as_ref(), ref_new.as_ref()),
        };
        encode_frame(
            p,
            cur,
            &recon,
            fwd,
            bwd,
            ftype,
            &tables,
            &iq,
            &nq,
            &scratch,
            &vidct,
            &mut writer,
            params,
            v,
        );
        if ftype != FrameType::B {
            ref_old = ref_new;
            ref_new = Some(recon);
        }
    }
    let end = writer.finish(p);
    EncodedVideo {
        addr: out,
        len: (end - out) as usize,
        width: w,
        height: h,
        gop: gop.to_vec(),
        qscale: params.qscale,
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_frame<S: SimSink>(
    p: &mut Program<S>,
    cur: &SimFrame,
    recon: &SimFrame,
    fwd: Option<&SimFrame>,
    bwd: Option<&SimFrame>,
    ftype: FrameType,
    tables: &VideoTables,
    iq: &SimQuant,
    nq: &SimQuant,
    scratch: &Scratch,
    vidct: &Option<VisIdct>,
    w: &mut BitWriterState,
    params: MpegParams,
    v: Variant,
) {
    let (mbw, mbh) = (cur.y.w / 16, cur.y.h / 16);
    let mut pred_mv = (0i64, 0i64);
    for mby in 0..mbh {
        for mbx in 0..mbw {
            // Mode decision via motion search.
            let mut mode = MbMode::Intra;
            let mut fmv = (0i64, 0i64);
            let mut bmv = (0i64, 0i64);
            if ftype != FrameType::I {
                let thresh = 256 * params.inter_threshold_per_px;
                // Full-pel search, then MPEG-2 half-pel refinement.
                let (fd, fs) = match fwd {
                    Some(r) => {
                        let (dx, dy, s) =
                            motion_search(p, &cur.y, &r.y, mbx, mby, params.search_range, v);
                        refine_halfpel(p, &cur.y, &r.y, mbx, mby, (dx, dy), s, &scratch.a.y, v)
                    }
                    None => ((0, 0), i64::MAX),
                };
                let (bd, bs) = match bwd {
                    Some(r) => {
                        let (dx, dy, s) =
                            motion_search(p, &cur.y, &r.y, mbx, mby, params.search_range, v);
                        refine_halfpel(p, &cur.y, &r.y, mbx, mby, (dx, dy), s, &scratch.a.y, v)
                    }
                    None => ((0, 0), i64::MAX),
                };
                // Bidirectional candidate: average the two refined
                // predictions and measure its SAD (the real encoder's
                // third option).
                let bi_s = if let (Some(fr), Some(br)) = (fwd, bwd) {
                    interp_rect(
                        p,
                        &fr.y,
                        (mbx * 32) as i64 + fd.0,
                        (mby * 32) as i64 + fd.1,
                        &scratch.a.y,
                        16,
                        16,
                        v,
                    );
                    interp_rect(
                        p,
                        &br.y,
                        (mbx * 32) as i64 + bd.0,
                        (mby * 32) as i64 + bd.1,
                        &scratch.b.y,
                        16,
                        16,
                        v,
                    );
                    avg_rect(
                        p,
                        (&scratch.a.y, 0, 0),
                        (&scratch.b.y, 0, 0),
                        &scratch.pred.y,
                        16,
                        16,
                        v,
                    );
                    crate::motion::sad_16x16(
                        p,
                        &cur.y,
                        &scratch.pred.y,
                        mbx * 16,
                        mby * 16,
                        -((mbx * 16) as i64),
                        -((mby * 16) as i64),
                        i64::MAX,
                        v,
                    )
                    .unwrap_or(i64::MAX)
                } else {
                    i64::MAX
                };
                let best = fs.min(bs).min(bi_s);
                if best < thresh {
                    if bi_s <= fs && bi_s <= bs {
                        mode = MbMode::Bi;
                        fmv = fd;
                        bmv = bd;
                    } else if fs <= bs {
                        mode = MbMode::Fwd;
                        fmv = fd;
                    } else {
                        mode = MbMode::Bwd;
                        bmv = bd;
                    }
                }
            }

            // Emit the MB header.
            if ftype != FrameType::I {
                let mb = p.li(mode.bits());
                let two = p.li(2);
                w.put(p, &mb, &two);
                if mode.uses_fwd() {
                    let dx = p.li(fmv.0 - pred_mv.0);
                    let dy = p.li(fmv.1 - pred_mv.1);
                    tables.put_signed(p, w, &dx);
                    tables.put_signed(p, w, &dy);
                    pred_mv = fmv;
                }
                if mode.uses_bwd() {
                    let dx = p.li(bmv.0);
                    let dy = p.li(bmv.1);
                    tables.put_signed(p, w, &dx);
                    tables.put_signed(p, w, &dy);
                }
                if mode == MbMode::Intra {
                    pred_mv = (0, 0);
                }
            }

            // Materialize fractional / bidirectional predictions.
            let mat = materialize_pred(p, mode, fwd, bwd, fmv, bmv, mbx, mby, scratch, v);

            // Code the six blocks.
            for blk in 0..6usize {
                let (cur_plane, rec_plane, bx, by) = block_geometry(cur, recon, mbx, mby, blk);
                if mode == MbMode::Intra {
                    let samples = load_block(p, cur_plane, bx, by);
                    let coef = fdct(p, &samples);
                    let zz = iq.quantize(p, &coef);
                    tables.put_block(p, w, &zz);
                    // Reconstruction: dequantize + IDCT + store.
                    let raster = dequant_all(p, iq, &zz);
                    if let Some(ctx) = vidct {
                        ctx.run(p, &raster, rec_plane, bx, by);
                    } else {
                        let px = idct(p, &raster);
                        store_block(p, rec_plane, bx, by, &px);
                    }
                } else {
                    let (pred_plane, px_off, py_off) =
                        pred_source(mode, fwd, bwd, scratch, fmv, bmv, mbx, mby, blk, mat);
                    let res = residual_block(p, cur_plane, bx, by, &pred_plane, px_off, py_off);
                    let coef = fdct(p, &res);
                    // MPEG-2 non-intra dead-zone quantization.
                    let zz = nq.quantize_trunc(p, &coef);
                    tables.put_block(p, w, &zz);
                    if zz.iter().all(|l| l.value() == 0) {
                        // Uncoded block: reconstruction is a pure MC copy.
                        mc_copy_block(p, rec_plane, bx, by, &pred_plane, px_off, py_off, v);
                    } else {
                        let raster = dequant_all(p, nq, &zz);
                        let rpx = idct(p, &raster);
                        recon_block(p, rec_plane, bx, by, &pred_plane, px_off, py_off, &rpx);
                    }
                }
            }
        }
    }
}

/// Which plane and block coordinates block `blk` (0-3 luma, 4 Cb, 5 Cr)
/// of MB `(mbx, mby)` addresses.
pub(crate) fn block_geometry<'f>(
    cur: &'f SimFrame,
    rec: &'f SimFrame,
    mbx: usize,
    mby: usize,
    blk: usize,
) -> (&'f SimPlane, &'f SimPlane, usize, usize) {
    match blk {
        0 => (&cur.y, &rec.y, 2 * mbx, 2 * mby),
        1 => (&cur.y, &rec.y, 2 * mbx + 1, 2 * mby),
        2 => (&cur.y, &rec.y, 2 * mbx, 2 * mby + 1),
        3 => (&cur.y, &rec.y, 2 * mbx + 1, 2 * mby + 1),
        4 => (&cur.cb, &rec.cb, mbx, mby),
        5 => (&cur.cr, &rec.cr, mbx, mby),
        _ => unreachable!("six blocks per MB"),
    }
}

/// Materialize the prediction for one inter macroblock when it cannot
/// be read directly from a reference plane (any half-pel component, or
/// bidirectional blending). Returns `(luma_materialized,
/// chroma_materialized)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn materialize_pred<S: SimSink>(
    p: &mut Program<S>,
    mode: MbMode,
    fwd: Option<&SimFrame>,
    bwd: Option<&SimFrame>,
    fmv2: (i64, i64),
    bmv2: (i64, i64),
    mbx: usize,
    mby: usize,
    scratch: &Scratch,
    v: Variant,
) -> (bool, bool) {
    let frac = |mv: (i64, i64)| mv.0 & 1 != 0 || mv.1 & 1 != 0;
    match mode {
        MbMode::Intra => (false, false),
        MbMode::Fwd | MbMode::Bwd => {
            let (r, mv2) = if mode == MbMode::Fwd {
                (fwd.expect("fwd ref"), fmv2)
            } else {
                (bwd.expect("bwd ref"), bmv2)
            };
            let cmv2 = (chroma_mv(mv2.0), chroma_mv(mv2.1));
            let luma = frac(mv2);
            let chroma = frac(cmv2);
            if luma {
                interp_rect(
                    p,
                    &r.y,
                    (mbx * 32) as i64 + mv2.0,
                    (mby * 32) as i64 + mv2.1,
                    &scratch.pred.y,
                    16,
                    16,
                    v,
                );
            }
            if chroma {
                interp_rect(
                    p,
                    &r.cb,
                    (mbx * 16) as i64 + cmv2.0,
                    (mby * 16) as i64 + cmv2.1,
                    &scratch.pred.cb,
                    8,
                    8,
                    v,
                );
                interp_rect(
                    p,
                    &r.cr,
                    (mbx * 16) as i64 + cmv2.0,
                    (mby * 16) as i64 + cmv2.1,
                    &scratch.pred.cr,
                    8,
                    8,
                    v,
                );
            }
            (luma, chroma)
        }
        MbMode::Bi => {
            let fr = fwd.expect("bi needs fwd");
            let br = bwd.expect("bi needs bwd");
            for (r, mv2, set) in [(fr, fmv2, &scratch.a), (br, bmv2, &scratch.b)] {
                let cmv2 = (chroma_mv(mv2.0), chroma_mv(mv2.1));
                interp_rect(
                    p,
                    &r.y,
                    (mbx * 32) as i64 + mv2.0,
                    (mby * 32) as i64 + mv2.1,
                    &set.y,
                    16,
                    16,
                    v,
                );
                interp_rect(
                    p,
                    &r.cb,
                    (mbx * 16) as i64 + cmv2.0,
                    (mby * 16) as i64 + cmv2.1,
                    &set.cb,
                    8,
                    8,
                    v,
                );
                interp_rect(
                    p,
                    &r.cr,
                    (mbx * 16) as i64 + cmv2.0,
                    (mby * 16) as i64 + cmv2.1,
                    &set.cr,
                    8,
                    8,
                    v,
                );
            }
            avg_rect(
                p,
                (&scratch.a.y, 0, 0),
                (&scratch.b.y, 0, 0),
                &scratch.pred.y,
                16,
                16,
                v,
            );
            avg_rect(
                p,
                (&scratch.a.cb, 0, 0),
                (&scratch.b.cb, 0, 0),
                &scratch.pred.cb,
                8,
                8,
                v,
            );
            avg_rect(
                p,
                (&scratch.a.cr, 0, 0),
                (&scratch.b.cr, 0, 0),
                &scratch.pred.cr,
                8,
                8,
                v,
            );
            (true, true)
        }
    }
}

/// Prediction plane and sample offset for block `blk` under `mode`
/// (motion vectors in half-pel units; `mat` says which planes were
/// materialized into `scratch.pred` by [`materialize_pred`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pred_source(
    mode: MbMode,
    fwd: Option<&SimFrame>,
    bwd: Option<&SimFrame>,
    scratch: &Scratch,
    fmv2: (i64, i64),
    bmv2: (i64, i64),
    mbx: usize,
    mby: usize,
    blk: usize,
    mat: (bool, bool),
) -> (SimPlane, i64, i64) {
    let luma = blk < 4;
    let (bxl, byl) = match blk {
        0 => (0, 0),
        1 => (8, 0),
        2 => (0, 8),
        3 => (8, 8),
        _ => (0, 0),
    };
    let materialized = if luma { mat.0 } else { mat.1 };
    if materialized {
        return if luma {
            (scratch.pred.y, bxl, byl)
        } else if blk == 4 {
            (scratch.pred.cb, 0, 0)
        } else {
            (scratch.pred.cr, 0, 0)
        };
    }
    // Direct (integer-position) prediction from the reference.
    let (r, mv2) = match mode {
        MbMode::Fwd => (fwd.expect("fwd ref"), fmv2),
        MbMode::Bwd => (bwd.expect("bwd ref"), bmv2),
        MbMode::Bi => unreachable!("bi predictions are always materialized"),
        MbMode::Intra => unreachable!("intra has no prediction"),
    };
    if luma {
        (
            r.y,
            (mbx * 16) as i64 + mv2.0 / 2 + bxl,
            (mby * 16) as i64 + mv2.1 / 2 + byl,
        )
    } else {
        let cmv2 = (chroma_mv(mv2.0), chroma_mv(mv2.1));
        let pl = if blk == 4 { r.cb } else { r.cr };
        (
            pl,
            (mbx * 8) as i64 + cmv2.0 / 2,
            (mby * 8) as i64 + cmv2.1 / 2,
        )
    }
}

/// Dequantize all 64 zig-zag levels into raster coefficients.
pub(crate) fn dequant_all<S: SimSink>(p: &mut Program<S>, q: &SimQuant, zz: &[Val]) -> Vec<Val> {
    let zero = p.li(0);
    let mut raster = vec![zero; 64];
    for (k, lvl) in zz.iter().enumerate() {
        let (r, v) = q.dequant_one(p, k, lvl);
        raster[r] = v;
    }
    raster
}
