//! Macroblock-level shared definitions.

use media_dsp::quant::MPEG_INTRA_Q;

/// Macroblock prediction modes (2 bits in the stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbMode {
    /// Intra-coded.
    Intra,
    /// Forward prediction.
    Fwd,
    /// Backward prediction.
    Bwd,
    /// Bidirectional (averaged) prediction.
    Bi,
}

impl MbMode {
    /// Stream encoding.
    pub fn bits(self) -> i64 {
        match self {
            MbMode::Intra => 0,
            MbMode::Fwd => 1,
            MbMode::Bwd => 2,
            MbMode::Bi => 3,
        }
    }

    /// Decode from the 2-bit field.
    pub fn from_bits(b: i64) -> Self {
        match b {
            0 => MbMode::Intra,
            1 => MbMode::Fwd,
            2 => MbMode::Bwd,
            3 => MbMode::Bi,
            _ => unreachable!("2-bit field"),
        }
    }

    /// Does this mode use the forward reference?
    pub fn uses_fwd(self) -> bool {
        matches!(self, MbMode::Fwd | MbMode::Bi)
    }

    /// Does this mode use the backward reference?
    pub fn uses_bwd(self) -> bool {
        matches!(self, MbMode::Bwd | MbMode::Bi)
    }
}

/// Chroma motion vector: half the luma vector, truncated toward zero
/// (MPEG-2 full-pel simplification).
pub fn chroma_mv(mv: i64) -> i64 {
    mv / 2
}

/// Intra quantization table scaled by `qscale` (8 == unscaled).
pub fn intra_quant(qscale: u32) -> [u16; 64] {
    let mut q = [0u16; 64];
    for i in 0..64 {
        q[i] = ((MPEG_INTRA_Q[i] as u32 * qscale + 4) / 8).clamp(1, 255) as u16;
    }
    q
}

/// Inter (non-intra) quantization: the flat 16 matrix scaled by
/// `qscale`.
pub fn inter_quant(qscale: u32) -> [u16; 64] {
    [((16 * qscale + 4) / 8).clamp(1, 255) as u16; 64]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bits_roundtrip() {
        for m in [MbMode::Intra, MbMode::Fwd, MbMode::Bwd, MbMode::Bi] {
            assert_eq!(MbMode::from_bits(m.bits()), m);
        }
        assert!(MbMode::Bi.uses_fwd() && MbMode::Bi.uses_bwd());
        assert!(MbMode::Fwd.uses_fwd() && !MbMode::Fwd.uses_bwd());
        assert!(!MbMode::Intra.uses_fwd());
    }

    #[test]
    fn chroma_mv_truncates_toward_zero() {
        assert_eq!(chroma_mv(5), 2);
        assert_eq!(chroma_mv(-5), -2);
        assert_eq!(chroma_mv(4), 2);
        assert_eq!(chroma_mv(-1), 0);
    }

    #[test]
    fn quant_scaling() {
        assert_eq!(intra_quant(8), {
            let mut q = [0u16; 64];
            for i in 0..64 {
                q[i] = ((MPEG_INTRA_Q[i] as u32 * 8 + 4) / 8) as u16;
            }
            q
        });
        assert!(inter_quant(16).iter().all(|&q| q == 32));
        assert!(intra_quant(1).iter().all(|&q| q >= 1));
    }
}
