//! YUV 4:2:0 frames in simulated memory.

use media_image::synth::Yuv420;
use media_jpeg::SimPlane;
use visim_cpu::SimSink;
use visim_trace::Program;

/// A 4:2:0 frame resident in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct SimFrame {
    /// Luma plane.
    pub y: SimPlane,
    /// Cb plane (half resolution).
    pub cb: SimPlane,
    /// Cr plane (half resolution).
    pub cr: SimPlane,
}

impl SimFrame {
    /// Allocate a zeroed frame.
    pub fn alloc<S: SimSink>(p: &mut Program<S>, w: usize, h: usize) -> Self {
        SimFrame {
            y: SimPlane::alloc(p, w, h),
            cb: SimPlane::alloc(p, w / 2, h / 2),
            cr: SimPlane::alloc(p, w / 2, h / 2),
        }
    }

    /// Copy a host frame into simulated memory (untimed input I/O).
    pub fn from_yuv<S: SimSink>(p: &mut Program<S>, f: &Yuv420) -> Self {
        let s = Self::alloc(p, f.width, f.height);
        p.mem_mut().write_bytes(s.y.addr, &f.y);
        p.mem_mut().write_bytes(s.cb.addr, &f.u);
        p.mem_mut().write_bytes(s.cr.addr, &f.v);
        s
    }

    /// Copy the frame back out.
    pub fn to_yuv<S: SimSink>(&self, p: &Program<S>) -> Yuv420 {
        Yuv420 {
            width: self.y.w,
            height: self.y.h,
            y: self.y.to_vec(p),
            u: self.cb.to_vec(p),
            v: self.cr.to_vec(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    #[test]
    fn frame_roundtrips() {
        let f = &synth::video(32, 16, 1, 3)[0];
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let sf = SimFrame::from_yuv(&mut p, f);
        assert_eq!(&sf.to_yuv(&p), f);
        assert_eq!(sf.cb.w, 16);
        assert_eq!(sf.cb.h, 8);
    }
}
