//! Binary PPM (P6) and PGM (P5) image I/O.

use std::fmt;
use std::io::{self, Read, Write};

use crate::Image;

/// Error decoding a PPM/PGM stream.
#[derive(Debug)]
pub enum DecodePpmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a valid P5/P6 file.
    Malformed(&'static str),
    /// The header's `width × height × bands` does not fit in memory
    /// (hostile headers must fail cleanly, not wrap or abort).
    Oversized {
        /// Claimed width.
        width: usize,
        /// Claimed height.
        height: usize,
    },
    /// The header's maxval is 0 or above the 8-bit range this decoder
    /// supports.
    UnsupportedMaxval(usize),
}

impl fmt::Display for DecodePpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodePpmError::Io(e) => write!(f, "i/o error reading ppm: {e}"),
            DecodePpmError::Malformed(m) => write!(f, "malformed ppm: {m}"),
            DecodePpmError::Oversized { width, height } => {
                write!(f, "ppm header claims an oversized image: {width}x{height}")
            }
            DecodePpmError::UnsupportedMaxval(v) => {
                write!(f, "ppm maxval {v} unsupported (must be 1..=255)")
            }
        }
    }
}

impl std::error::Error for DecodePpmError {}

impl From<io::Error> for DecodePpmError {
    fn from(e: io::Error) -> Self {
        DecodePpmError::Io(e)
    }
}

/// Write `img` as binary PPM (3 bands) or PGM (1 band).
///
/// # Errors
///
/// Propagates writer failures. Returns an error for band counts other
/// than 1 or 3.
pub fn write<W: Write>(img: &Image, mut w: W) -> io::Result<()> {
    let magic = match img.bands() {
        1 => "P5",
        3 => "P6",
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "only 1- or 3-band images map to PGM/PPM",
            ))
        }
    };
    write!(w, "{magic}\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.data())
}

/// Read a binary PPM/PGM image.
///
/// # Errors
///
/// Returns [`DecodePpmError`] on I/O failure or malformed input.
pub fn read<R: Read>(mut r: R) -> Result<Image, DecodePpmError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let mut pos = 0usize;

    fn token(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, DecodePpmError> {
        // Skip whitespace and comments.
        loop {
            while *pos < buf.len() && buf[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
            if *pos < buf.len() && buf[*pos] == b'#' {
                while *pos < buf.len() && buf[*pos] != b'\n' {
                    *pos += 1;
                }
            } else {
                break;
            }
        }
        let start = *pos;
        while *pos < buf.len() && !buf[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if start == *pos {
            return Err(DecodePpmError::Malformed("unexpected end of header"));
        }
        Ok(buf[start..*pos].to_vec())
    }

    let magic = token(&buf, &mut pos)?;
    let bands = match magic.as_slice() {
        b"P6" => 3,
        b"P5" => 1,
        _ => return Err(DecodePpmError::Malformed("not a P5/P6 file")),
    };
    let parse = |t: Vec<u8>| -> Result<usize, DecodePpmError> {
        std::str::from_utf8(&t)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(DecodePpmError::Malformed("bad header number"))
    };
    let width = parse(token(&buf, &mut pos)?)?;
    let height = parse(token(&buf, &mut pos)?)?;
    let maxval = parse(token(&buf, &mut pos)?)?;
    if maxval == 0 || maxval > 255 {
        return Err(DecodePpmError::UnsupportedMaxval(maxval));
    }
    if maxval != 255 {
        return Err(DecodePpmError::Malformed("only maxval 255 supported"));
    }
    pos += 1; // single whitespace after maxval
              // A hostile header can claim dimensions whose product overflows;
              // checked arithmetic turns that into a clean error. Anything larger
              // than the remaining payload is rejected before allocation.
    let need = width
        .checked_mul(height)
        .and_then(|px| px.checked_mul(bands))
        .ok_or(DecodePpmError::Oversized { width, height })?;
    if buf.len().saturating_sub(pos) < need {
        return Err(DecodePpmError::Malformed("truncated pixel data"));
    }
    Ok(Image::from_raw(
        width,
        height,
        bands,
        buf[pos..pos + need].to_vec(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn ppm_roundtrip() {
        let img = synth::still(37, 23, 3, 7);
        let mut bytes = Vec::new();
        write(&img, &mut bytes).unwrap();
        let back = read(&bytes[..]).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn pgm_roundtrip() {
        let img = synth::still(16, 9, 1, 3);
        let mut bytes = Vec::new();
        write(&img, &mut bytes).unwrap();
        let back = read(&bytes[..]).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn comments_are_skipped() {
        let data = b"P5\n# a comment\n2 2\n255\n\x01\x02\x03\x04";
        let img = read(&data[..]).unwrap();
        assert_eq!(img.data(), &[1, 2, 3, 4]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read(&b"JUNK"[..]).is_err());
        assert!(read(&b"P6\n2 2\n255\n\x01"[..]).is_err(), "truncated");
        assert!(read(&b"P6\n2 2\n65535\n"[..]).is_err(), "16-bit maxval");
    }

    #[test]
    fn hostile_dimension_overflow_is_rejected() {
        // width * height * 3 overflows usize; must fail cleanly rather
        // than wrap into a tiny (or huge) allocation.
        let big = usize::MAX / 2;
        let hdr = format!("P6\n{big} {big}\n255\n");
        match read(hdr.as_bytes()) {
            Err(DecodePpmError::Oversized { width, height }) => {
                assert_eq!(width, big);
                assert_eq!(height, big);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Large but non-overflowing claims fall through to the payload
        // length check.
        assert!(matches!(
            read(&b"P6\n1000000 1000000\n255\n\x00"[..]),
            Err(DecodePpmError::Malformed("truncated pixel data"))
        ));
    }

    #[test]
    fn hostile_maxval_is_rejected() {
        assert!(matches!(
            read(&b"P5\n2 2\n0\n\x01\x02\x03\x04"[..]),
            Err(DecodePpmError::UnsupportedMaxval(0))
        ));
        assert!(matches!(
            read(&b"P5\n2 2\n65535\n\x01\x02\x03\x04"[..]),
            Err(DecodePpmError::UnsupportedMaxval(65535))
        ));
        // In-range but unsupported scaling still errors (paper inputs
        // are always 8-bit full-range).
        assert!(read(&b"P5\n2 2\n100\n\x01\x02\x03\x04"[..]).is_err());
    }

    #[test]
    fn two_band_images_cannot_serialize() {
        let img = Image::new(2, 2, 2);
        let mut bytes = Vec::new();
        assert!(write(&img, &mut bytes).is_err());
    }
}
