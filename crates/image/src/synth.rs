//! Deterministic synthetic inputs standing in for the paper's images and
//! video (see DESIGN.md, substitution #2).

use visim_util::Rng;

use crate::Image;

/// A photographic-looking still: smooth low-frequency gradients, a few
/// structured edges (rectangles and a disc), and seeded high-frequency
/// noise. Deterministic in `seed`.
pub fn still(width: usize, height: usize, bands: usize, seed: u64) -> Image {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed_1234);
    let mut img = Image::new(width, height, bands);
    // Random per-band gradient directions and phases.
    let mut params = Vec::new();
    for _ in 0..bands {
        params.push((
            rng.gen_range(0.3..1.7),                   // x frequency scale
            rng.gen_range(0.3..1.7),                   // y frequency scale
            rng.gen_range(0.0..std::f64::consts::TAU), // phase
            rng.gen_range(60.0..120.0f64),
        ));
    }
    // Structured occluders: rectangles and one disc.
    let mut rects = Vec::new();
    for _ in 0..6 {
        let x0 = rng.gen_range(0..width.max(2) - 1);
        let y0 = rng.gen_range(0..height.max(2) - 1);
        let w = rng.gen_range(width / 8 + 1..width / 2 + 2);
        let h = rng.gen_range(height / 8 + 1..height / 2 + 2);
        let shade: i32 = rng.gen_range(-70..70);
        rects.push((x0, y0, w, h, shade));
    }
    let (cx, cy) = (width as f64 * 0.6, height as f64 * 0.4);
    let radius = (width.min(height) as f64) * 0.2;

    for y in 0..height {
        for x in 0..width {
            for (b, &(fx, fy, ph, amp)) in params.iter().enumerate().take(bands) {
                let u = x as f64 / width.max(1) as f64;
                let v = y as f64 / height.max(1) as f64;
                let mut val = 128.0
                    + amp
                        * 0.5
                        * ((u * fx * std::f64::consts::TAU + ph).sin()
                            + (v * fy * std::f64::consts::TAU).cos());
                for &(x0, y0, w, h, shade) in &rects {
                    if x >= x0 && x < x0 + w && y >= y0 && y < y0 + h {
                        val += shade as f64 * 0.5;
                    }
                }
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy < radius * radius {
                    val += 35.0;
                }
                val += rng.gen_range(-8.0..8.0); // sensor noise
                img.set(x, y, b, val.clamp(0.0, 255.0) as u8);
            }
        }
    }
    img
}

/// An alpha map (values spanning the full 0-255 range with smooth and
/// noisy regions), used by the blending benchmarks in place of
/// `winter16.ppm`.
pub fn alpha(width: usize, height: usize, bands: usize, seed: u64) -> Image {
    let mut rng = Rng::seed_from_u64(seed ^ 0xa1fa);
    let mut img = Image::new(width, height, bands);
    for y in 0..height {
        for x in 0..width {
            for b in 0..bands {
                let ramp = (x * 255 / width.max(1)) as f64;
                let wave = 60.0 * ((y as f64) / 9.0).sin();
                let noise = rng.gen_range(-25.0..25.0);
                img.set(x, y, b, (ramp + wave + noise).clamp(0.0, 255.0) as u8);
            }
        }
    }
    img
}

/// A planar 4:2:0 YUV frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Yuv420 {
    /// Luma width in pixels (even).
    pub width: usize,
    /// Luma height in pixels (even).
    pub height: usize,
    /// Luma plane, `width * height` bytes.
    pub y: Vec<u8>,
    /// Cb plane, quarter size.
    pub u: Vec<u8>,
    /// Cr plane, quarter size.
    pub v: Vec<u8>,
}

impl Yuv420 {
    /// A black frame.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "4:2:0 needs even dims"
        );
        Yuv420 {
            width,
            height,
            y: vec![16; width * height],
            u: vec![128; width * height / 4],
            v: vec![128; width * height / 4],
        }
    }

    /// Luma PSNR against another frame, in dB.
    pub fn psnr_y(&self, other: &Yuv420) -> f64 {
        assert_eq!(self.y.len(), other.y.len());
        let se: u64 = self
            .y
            .iter()
            .zip(&other.y)
            .map(|(&a, &b)| {
                let d = a as i64 - b as i64;
                (d * d) as u64
            })
            .sum();
        if se == 0 {
            return f64::INFINITY;
        }
        let mse = se as f64 / self.y.len() as f64;
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// A deterministic synthetic video: a textured background panning at
/// (+2, +1) pixels per frame with a brighter foreground block moving the
/// opposite way (so motion estimation has real work and occlusion),
/// standing in for the `mei16v2` bit-stream content.
pub fn video(width: usize, height: usize, frames: usize, seed: u64) -> Vec<Yuv420> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x71de0);
    // A wrapping background texture bigger than the frame.
    let (tw, th) = (width * 2, height * 2);
    let mut tex = vec![0u8; tw * th];
    for ty in 0..th {
        for tx in 0..tw {
            let base = 100.0
                + 60.0 * ((tx as f64 / 17.0).sin() + (ty as f64 / 13.0).cos())
                + rng.gen_range(-10.0..10.0);
            tex[ty * tw + tx] = base.clamp(16.0, 235.0) as u8;
        }
    }
    let (bw, bh) = (width / 4, height / 4);
    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        let mut frame = Yuv420::new(width, height);
        let (pan_x, pan_y) = (2 * f, f);
        for y in 0..height {
            for x in 0..width {
                let t = tex[((y + pan_y) % th) * tw + ((x + pan_x) % tw)];
                frame.y[y * width + x] = t;
            }
        }
        // The moving foreground block.
        let bx = (width as i64 - bw as i64 - 3 * f as i64).rem_euclid(width as i64) as usize;
        let by = (f * 2) % (height - bh).max(1);
        for y in by..(by + bh).min(height) {
            for x in bx..(bx + bw).min(width) {
                frame.y[y * width + x] = frame.y[y * width + x].saturating_add(60);
            }
        }
        // Chroma: slow fields derived from position so that color coding
        // is exercised.
        let (cw, ch) = (width / 2, height / 2);
        for cy in 0..ch {
            for cx in 0..cw {
                frame.u[cy * cw + cx] = (118 + ((cx + f) % 20)) as u8;
                frame.v[cy * cw + cx] = (138usize.wrapping_sub((cy + f) % 24)) as u8;
            }
        }
        out.push(frame);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn still_is_deterministic() {
        let a = still(64, 40, 3, 5);
        let b = still(64, 40, 3, 5);
        assert_eq!(a, b);
        let c = still(64, 40, 3, 6);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn still_uses_wide_value_range() {
        let img = still(128, 80, 3, 1);
        let min = *img.data().iter().min().unwrap();
        let max = *img.data().iter().max().unwrap();
        assert!(max - min > 100, "dynamic range {min}..{max}");
    }

    #[test]
    fn alpha_spans_range() {
        let img = alpha(128, 64, 3, 2);
        let min = *img.data().iter().min().unwrap();
        let max = *img.data().iter().max().unwrap();
        assert!(min < 30 && max > 225, "alpha range {min}..{max}");
    }

    #[test]
    fn video_has_motion() {
        let v = video(64, 48, 3, 9);
        assert_eq!(v.len(), 3);
        // Consecutive frames differ substantially but are correlated:
        // panning means frame N+1 shifted back matches frame N well.
        let psnr_raw = v[0].psnr_y(&v[1]);
        assert!(psnr_raw < 30.0, "frames differ: {psnr_raw}");
        // Shifted comparison: frame1 shifted by (-2, -1) ~ frame0.
        let (w, h) = (v[0].width, v[0].height);
        let mut shifted = Yuv420::new(w, h);
        for y in 0..h - 1 {
            for x in 0..w - 2 {
                shifted.y[y * w + x] = v[1].y[(y + 1) * w + (x + 2)];
            }
        }
        let mut matches = 0usize;
        let mut total = 0usize;
        for y in 0..h - 1 {
            for x in 0..w - 2 {
                total += 1;
                if (shifted.y[y * w + x] as i32 - v[0].y[(y + 1) * w + x + 2] as i32).abs() < 4 {
                    matches += 1;
                }
            }
        }
        // This is a loose structural check: background pans so most
        // pixels should align somewhere; exact fraction depends on the
        // occluder size.
        assert!(total > 0 && matches * 100 / total > 10);
    }

    #[test]
    fn video_is_deterministic() {
        assert_eq!(video(32, 16, 2, 3), video(32, 16, 2, 3));
    }

    #[test]
    fn yuv_psnr_identity() {
        let v = video(32, 16, 1, 3);
        assert_eq!(v[0].psnr_y(&v[0].clone()), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "even dims")]
    fn yuv_requires_even_dimensions() {
        let _ = Yuv420::new(33, 16);
    }
}
