//! Image substrate for the `visim` media workloads.
//!
//! The paper runs its image benchmarks on 1024×640 3-band (RGB) images
//! from the Intel Media Benchmark (`sf16.ppm`, `rose16.ppm`,
//! `winter16.ppm`) and its video benchmarks on the 352×240 `mei16v2`
//! MPEG-2 test stream. Those inputs are not redistributable, so this
//! crate provides:
//!
//! * [`Image`] — a planar-free, interleaved 8-bit multi-band image
//!   buffer with PPM import/export ([`ppm`]);
//! * [`synth`] — deterministic synthetic generators that stand in for
//!   the paper's inputs: photographic-looking stills (smooth gradients +
//!   structured edges + seeded noise) and a translating/occluding video
//!   scene in 4:2:0 YUV for the MPEG benchmarks.
//!
//! Kernel behaviour is data-independent except for branch outcomes in
//! thresholding/saturation paths; the generators expose edge/noise
//! density so those branches are as hard to predict as on photographs
//! (see DESIGN.md substitution #2).

pub mod ppm;
pub mod synth;

/// An 8-bit interleaved image with `bands` channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    bands: usize,
    data: Vec<u8>,
}

impl Image {
    /// A black image.
    pub fn new(width: usize, height: usize, bands: usize) -> Self {
        assert!((1..=4).contains(&bands), "1..=4 bands supported");
        Image {
            width,
            height,
            bands,
            data: vec![0; width * height * bands],
        }
    }

    /// Build from raw interleaved data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height * bands`.
    pub fn from_raw(width: usize, height: usize, bands: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height * bands, "raw size mismatch");
        Image {
            width,
            height,
            bands,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of interleaved bands (channels).
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Row stride in bytes.
    pub fn stride(&self) -> usize {
        self.width * self.bands
    }

    /// The interleaved bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The interleaved bytes, mutably.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample one band of one pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: usize, y: usize, b: usize) -> u8 {
        self.data[(y * self.width + x) * self.bands + b]
    }

    /// Set one band of one pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, b: usize, v: u8) {
        self.data[(y * self.width + x) * self.bands + b] = v;
    }

    /// Mean absolute per-sample difference against `other` (images must
    /// have identical geometry). Used to verify that VIS variants are
    /// "visually imperceptible" per the paper's §2.3.2 criterion.
    pub fn mean_abs_diff(&self, other: &Image) -> f64 {
        assert_eq!(self.data.len(), other.data.len(), "geometry mismatch");
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs() as u64)
            .sum();
        sum as f64 / self.data.len() as f64
    }

    /// Peak signal-to-noise ratio against `other`, in dB (infinite for
    /// identical images).
    pub fn psnr(&self, other: &Image) -> f64 {
        assert_eq!(self.data.len(), other.data.len(), "geometry mismatch");
        let se: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as i64 - b as i64;
                (d * d) as u64
            })
            .sum();
        if se == 0 {
            return f64::INFINITY;
        }
        let mse = se as f64 / self.data.len() as f64;
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_accessors() {
        let mut img = Image::new(4, 3, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.bands(), 3);
        assert_eq!(img.stride(), 12);
        assert_eq!(img.data().len(), 36);
        img.set(2, 1, 1, 99);
        assert_eq!(img.get(2, 1, 1), 99);
        assert_eq!(img.get(0, 0, 0), 0);
    }

    #[test]
    fn from_raw_roundtrip() {
        let data: Vec<u8> = (0..24).collect();
        let img = Image::from_raw(4, 2, 3, data.clone());
        assert_eq!(img.data(), &data[..]);
        assert_eq!(img.get(3, 1, 2), 23);
    }

    #[test]
    #[should_panic(expected = "raw size mismatch")]
    fn from_raw_validates_size() {
        let _ = Image::from_raw(4, 2, 3, vec![0; 10]);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = Image::from_raw(2, 2, 1, vec![1, 2, 3, 4]);
        assert_eq!(img.psnr(&img.clone()), f64::INFINITY);
        assert_eq!(img.mean_abs_diff(&img.clone()), 0.0);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = Image::from_raw(2, 2, 1, vec![100, 100, 100, 100]);
        let b = Image::from_raw(2, 2, 1, vec![101, 100, 100, 100]);
        let c = Image::from_raw(2, 2, 1, vec![130, 130, 130, 130]);
        assert!(a.psnr(&b) > a.psnr(&c));
        assert!(a.mean_abs_diff(&b) < a.mean_abs_diff(&c));
    }
}
