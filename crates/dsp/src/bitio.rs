//! MSB-first bit-level I/O with optional JPEG byte stuffing.

/// MSB-first bit writer.
///
/// With stuffing enabled (JPEG entropy-coded segments), every 0xFF data
/// byte is followed by a stuffed 0x00.
#[derive(Debug, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    acc: u32,
    nbits: u32,
    stuff: bool,
}

impl BitWriter {
    /// A writer without byte stuffing.
    pub fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            acc: 0,
            nbits: 0,
            stuff: false,
        }
    }

    /// A writer with JPEG 0xFF00 byte stuffing.
    pub fn with_stuffing() -> Self {
        BitWriter {
            stuff: true,
            ..Self::new()
        }
    }

    /// Append the low `n` bits of `v` (MSB first), `n <= 24`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24`.
    pub fn put(&mut self, v: u32, n: u32) {
        assert!(n <= 24, "put supports up to 24 bits at a time");
        self.acc = (self.acc << n) | (v & ((1u32 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            let b = (self.acc >> (self.nbits - 8)) as u8;
            self.bytes.push(b);
            if self.stuff && b == 0xff {
                self.bytes.push(0x00);
            }
            self.nbits -= 8;
        }
        self.acc &= (1u32 << self.nbits) - 1;
    }

    /// Pad with 1-bits to a byte boundary (the JPEG convention).
    pub fn align(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1 << pad) - 1, pad);
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Finish (aligning to a byte) and return the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align();
        self.bytes
    }
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// MSB-first bit reader (with optional un-stuffing).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
    stuff: bool,
}

impl<'a> BitReader<'a> {
    /// A reader without byte stuffing.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
            stuff: false,
        }
    }

    /// A reader that removes JPEG 0xFF00 stuffing.
    pub fn with_stuffing(bytes: &'a [u8]) -> Self {
        BitReader {
            stuff: true,
            ..Self::new(bytes)
        }
    }

    fn fill(&mut self) {
        while self.nbits <= 24 && self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            self.pos += 1;
            if self.stuff && b == 0xff {
                // Skip the stuffed zero byte.
                if self.pos < self.bytes.len() && self.bytes[self.pos] == 0x00 {
                    self.pos += 1;
                }
            }
            self.acc = (self.acc << 8) | b as u32;
            self.nbits += 8;
        }
    }

    /// Read `n <= 24` bits; reads past the end return padding 1-bits
    /// (mirroring the writer's alignment convention).
    pub fn get(&mut self, n: u32) -> u32 {
        assert!(n <= 24);
        self.fill();
        if self.nbits < n {
            // Pad with 1s past the end.
            let missing = n - self.nbits;
            self.acc = (self.acc << missing) | ((1u32 << missing) - 1);
            self.nbits = n;
        }
        let v = (self.acc >> (self.nbits - n)) & if n == 32 { u32::MAX } else { (1 << n) - 1 };
        self.nbits -= n;
        self.acc &= if self.nbits == 0 {
            0
        } else {
            (1u32 << self.nbits) - 1
        };
        v
    }

    /// Read a single bit.
    pub fn bit(&mut self) -> u32 {
        self.get(1)
    }

    /// True once all source bits (minus padding) are consumed.
    pub fn exhausted(&mut self) -> bool {
        self.fill();
        self.nbits == 0 && self.pos >= self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let fields = [(0b1u32, 1), (0b0110, 4), (0xabc, 12), (0x3ffff, 18), (0, 3)];
        for &(v, n) in &fields {
            w.put(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.get(n), v, "{n}-bit field");
        }
    }

    #[test]
    fn stuffing_inserts_and_removes_zero_after_ff() {
        let mut w = BitWriter::with_stuffing();
        w.put(0xff, 8);
        w.put(0xd9, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0xff, 0x00, 0xd9]);
        let mut r = BitReader::with_stuffing(&bytes);
        assert_eq!(r.get(8), 0xff);
        assert_eq!(r.get(8), 0xd9);
    }

    #[test]
    fn align_pads_with_ones() {
        let mut w = BitWriter::new();
        w.put(0, 3);
        w.align();
        assert_eq!(w.into_bytes(), vec![0b0001_1111]);
    }

    #[test]
    fn bit_len_counts_partials() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.put(0xff, 8);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn reading_past_end_returns_ones() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.get(5), 0b11111);
    }

    #[test]
    fn exhausted_reports_end() {
        let mut w = BitWriter::new();
        w.put(0xa5, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(!r.exhausted());
        r.get(8);
        assert!(r.exhausted());
    }
}
