//! Quantization tables and helpers (ITU-T T.81 Annex K defaults, with
//! IJG-style quality scaling).

/// The Annex K luminance quantization table (raster order).
pub const LUMA_Q: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The Annex K chrominance quantization table (raster order).
pub const CHROMA_Q: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// The MPEG-2 default intra quantizer matrix (raster order).
pub const MPEG_INTRA_Q: [u16; 64] = [
    8, 16, 19, 22, 26, 27, 29, 34, //
    16, 16, 22, 24, 27, 29, 34, 37, //
    19, 22, 26, 27, 29, 34, 34, 38, //
    22, 22, 26, 27, 29, 34, 37, 40, //
    22, 26, 27, 29, 32, 35, 40, 48, //
    26, 27, 29, 32, 35, 40, 48, 58, //
    26, 27, 29, 34, 38, 46, 56, 69, //
    27, 29, 35, 38, 46, 56, 69, 83,
];

/// Scale a base table by an IJG-style quality factor in `1..=100`
/// (50 = unscaled); entries clamp to `1..=255`.
pub fn scale_table(base: &[u16; 64], quality: u32) -> [u16; 64] {
    let q = quality.clamp(1, 100);
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut out = [0u16; 64];
    for i in 0..64 {
        let v = (base[i] as u32 * scale + 50) / 100;
        out[i] = v.clamp(1, 255) as u16;
    }
    out
}

/// Quantize one coefficient (round-to-nearest, ties away from zero).
pub fn quantize(coef: i32, q: u16) -> i32 {
    let q = q as i32;
    if coef >= 0 {
        (coef + q / 2) / q
    } else {
        -((-coef + q / 2) / q)
    }
}

/// Dequantize one coefficient.
pub fn dequantize(level: i32, q: u16) -> i32 {
    level * q as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_50_is_identity() {
        assert_eq!(scale_table(&LUMA_Q, 50), LUMA_Q);
    }

    #[test]
    fn higher_quality_means_smaller_steps() {
        let q75 = scale_table(&LUMA_Q, 75);
        let q25 = scale_table(&LUMA_Q, 25);
        for i in 0..64 {
            assert!(q75[i] <= LUMA_Q[i]);
            assert!(q25[i] >= LUMA_Q[i]);
        }
    }

    #[test]
    fn quality_100_is_lossless_steps() {
        let q100 = scale_table(&LUMA_Q, 100);
        assert!(q100.iter().all(|&v| v == 1));
    }

    #[test]
    fn entries_stay_in_range() {
        for q in [1u32, 3, 10, 97, 100] {
            for &v in scale_table(&CHROMA_Q, q).iter() {
                assert!((1..=255).contains(&v), "q={q} v={v}");
            }
        }
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        assert_eq!(quantize(10, 4), 3); // 2.5 rounds away
        assert_eq!(quantize(9, 4), 2);
        assert_eq!(quantize(-10, 4), -3);
        assert_eq!(quantize(-9, 4), -2);
        assert_eq!(quantize(0, 16), 0);
    }

    #[test]
    fn quantize_dequantize_error_is_bounded() {
        for c in [-300i32, -37, -1, 0, 1, 5, 120, 999] {
            for q in [1u16, 2, 16, 99] {
                let back = dequantize(quantize(c, q), q);
                assert!((back - c).abs() <= q as i32 / 2 + 1, "c={c} q={q}");
            }
        }
    }
}
