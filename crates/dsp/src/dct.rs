//! Fixed-point 8×8 forward and inverse DCT (the "islow" integer
//! algorithm family used by the IJG codec and the MPEG-2 reference
//! encoder: a Loeffler/Ligtenberg/Moshovitz-style butterfly with 13-bit
//! fixed-point constants).

const CONST_BITS: i32 = 13;
const PASS1_BITS: i32 = 2;

const FIX_0_298631336: i64 = 2446;
const FIX_0_390180644: i64 = 3196;
const FIX_0_541196100: i64 = 4433;
const FIX_0_765366865: i64 = 6270;
const FIX_0_899976223: i64 = 7373;
const FIX_1_175875602: i64 = 9633;
const FIX_1_501321110: i64 = 12299;
const FIX_1_847759065: i64 = 15137;
const FIX_1_961570560: i64 = 16069;
const FIX_2_053119869: i64 = 16819;
const FIX_2_562915447: i64 = 20995;
const FIX_3_072711026: i64 = 25172;

#[inline]
fn descale(x: i64, n: i32) -> i64 {
    (x + (1 << (n - 1))) >> n
}

/// One 1-D forward DCT pass over 8 values; `shift` is the final descale
/// for the even/odd outputs.
#[allow(clippy::too_many_arguments)]
fn fdct_1d(d: [i64; 8], down: i32, up_shift: i32) -> [i64; 8] {
    let tmp0 = d[0] + d[7];
    let tmp7 = d[0] - d[7];
    let tmp1 = d[1] + d[6];
    let tmp6 = d[1] - d[6];
    let tmp2 = d[2] + d[5];
    let tmp5 = d[2] - d[5];
    let tmp3 = d[3] + d[4];
    let tmp4 = d[3] - d[4];

    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;

    let mut out = [0i64; 8];
    if up_shift >= 0 {
        out[0] = (tmp10 + tmp11) << up_shift;
        out[4] = (tmp10 - tmp11) << up_shift;
    } else {
        out[0] = descale(tmp10 + tmp11, -up_shift);
        out[4] = descale(tmp10 - tmp11, -up_shift);
    }

    let z1 = (tmp12 + tmp13) * FIX_0_541196100;
    out[2] = descale(z1 + tmp13 * FIX_0_765366865, down);
    out[6] = descale(z1 - tmp12 * FIX_1_847759065, down);

    let z1 = tmp4 + tmp7;
    let z2 = tmp5 + tmp6;
    let z3 = tmp4 + tmp6;
    let z4 = tmp5 + tmp7;
    let z5 = (z3 + z4) * FIX_1_175875602;

    let t4 = tmp4 * FIX_0_298631336;
    let t5 = tmp5 * FIX_2_053119869;
    let t6 = tmp6 * FIX_3_072711026;
    let t7 = tmp7 * FIX_1_501321110;
    let z1 = -z1 * FIX_0_899976223;
    let z2 = -z2 * FIX_2_562915447;
    let z3 = -z3 * FIX_1_961570560 + z5;
    let z4 = -z4 * FIX_0_390180644 + z5;

    out[7] = descale(t4 + z1 + z3, down);
    out[5] = descale(t5 + z2 + z4, down);
    out[3] = descale(t6 + z2 + z3, down);
    out[1] = descale(t7 + z1 + z4, down);
    out
}

/// Forward 8×8 DCT of a spatial block (values typically centered on 0,
/// e.g. pixel − 128). Returns true (unscaled) DCT-II coefficients with
/// the JPEG normalization.
pub fn fdct8x8(block: &[i32; 64]) -> [i32; 64] {
    let mut tmp = [0i64; 64];
    // Rows: keep PASS1_BITS of extra precision.
    for r in 0..8 {
        let mut d = [0i64; 8];
        for c in 0..8 {
            d[c] = block[r * 8 + c] as i64;
        }
        let o = fdct_1d(d, CONST_BITS - PASS1_BITS, PASS1_BITS);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&o);
    }
    // Columns: remove the extra precision and the ×8 DCT scale.
    let mut out = [0i32; 64];
    for c in 0..8 {
        let mut d = [0i64; 8];
        for r in 0..8 {
            d[r] = tmp[r * 8 + c];
        }
        let o = fdct_1d(d, CONST_BITS + PASS1_BITS + 3, -(PASS1_BITS + 3));
        for r in 0..8 {
            out[r * 8 + c] = o[r] as i32;
        }
    }
    out
}

/// One 1-D inverse DCT pass.
fn idct_1d(d: [i64; 8], down: i32) -> [i64; 8] {
    // Even part.
    let z2 = d[2];
    let z3 = d[6];
    let z1 = (z2 + z3) * FIX_0_541196100;
    let tmp2 = z1 - z3 * FIX_1_847759065;
    let tmp3 = z1 + z2 * FIX_0_765366865;

    let tmp0 = (d[0] + d[4]) << CONST_BITS;
    let tmp1 = (d[0] - d[4]) << CONST_BITS;

    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;

    // Odd part.
    let t0 = d[7];
    let t1 = d[5];
    let t2 = d[3];
    let t3 = d[1];
    let z1 = t0 + t3;
    let z2 = t1 + t2;
    let z3 = t0 + t2;
    let z4 = t1 + t3;
    let z5 = (z3 + z4) * FIX_1_175875602;

    let t0 = t0 * FIX_0_298631336;
    let t1 = t1 * FIX_2_053119869;
    let t2 = t2 * FIX_3_072711026;
    let t3 = t3 * FIX_1_501321110;
    let z1 = -z1 * FIX_0_899976223;
    let z2 = -z2 * FIX_2_562915447;
    let z3 = -z3 * FIX_1_961570560 + z5;
    let z4 = -z4 * FIX_0_390180644 + z5;

    let t0 = t0 + z1 + z3;
    let t1 = t1 + z2 + z4;
    let t2 = t2 + z2 + z3;
    let t3 = t3 + z1 + z4;

    [
        descale(tmp10 + t3, down),
        descale(tmp11 + t2, down),
        descale(tmp12 + t1, down),
        descale(tmp13 + t0, down),
        descale(tmp13 - t0, down),
        descale(tmp12 - t1, down),
        descale(tmp11 - t2, down),
        descale(tmp10 - t3, down),
    ]
}

/// Inverse 8×8 DCT of true (unscaled) coefficients; returns the spatial
/// block (still centered on 0).
pub fn idct8x8(coef: &[i32; 64]) -> [i32; 64] {
    let mut tmp = [0i64; 64];
    // Columns first (as the IJG code does).
    for c in 0..8 {
        let mut d = [0i64; 8];
        for r in 0..8 {
            d[r] = coef[r * 8 + c] as i64;
        }
        let o = idct_1d(d, CONST_BITS - PASS1_BITS);
        for r in 0..8 {
            tmp[r * 8 + c] = o[r];
        }
    }
    // Rows; the +3 removes the DCT's ×8 normalization.
    let mut out = [0i32; 64];
    for r in 0..8 {
        let mut d = [0i64; 8];
        d.copy_from_slice(&tmp[r * 8..r * 8 + 8]);
        let o = idct_1d(d, CONST_BITS + PASS1_BITS + 3);
        for c in 0..8 {
            out[r * 8 + c] = o[c] as i32;
        }
    }
    out
}

/// Floating-point reference DCT-II with JPEG normalization (tests only).
pub fn fdct8x8_f64(block: &[i32; 64]) -> [f64; 64] {
    let mut out = [0f64; 64];
    for v in 0..8 {
        for u in 0..8 {
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let mut s = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    s += block[y * 8 + x] as f64
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[v * 8 + u] = 0.25 * cu * cv * s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_block() -> [i32; 64] {
        let mut b = [0i32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as i32 * 7) % 256) - 128;
        }
        b
    }

    #[test]
    fn fdct_matches_float_reference() {
        let b = ramp_block();
        let fixed = fdct8x8(&b);
        let float = fdct8x8_f64(&b);
        for i in 0..64 {
            let err = (fixed[i] as f64 - float[i]).abs();
            assert!(err <= 2.0, "coef {i}: {} vs {:.2}", fixed[i], float[i]);
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let b = [10i32; 64];
        let c = fdct8x8(&b);
        // DC of a constant block = 8 * value with JPEG normalization.
        assert!((c[0] - 80).abs() <= 1, "DC {}", c[0]);
        for (i, &v) in c.iter().enumerate().skip(1) {
            assert!(v.abs() <= 1, "AC {i} should vanish: {v}");
        }
    }

    #[test]
    fn idct_of_dc_only_is_constant() {
        let mut c = [0i32; 64];
        c[0] = 80;
        let s = idct8x8(&c);
        for &v in &s {
            assert!((v - 10).abs() <= 1, "{v}");
        }
    }

    #[test]
    fn roundtrip_error_is_small() {
        for seed in 0..5i32 {
            let mut b = [0i32; 64];
            let mut x = seed.wrapping_mul(2654435761u32 as i32);
            for v in b.iter_mut() {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                *v = (x >> 16) % 128; // [-127, 127]
            }
            let back = idct8x8(&fdct8x8(&b));
            for i in 0..64 {
                let err = (back[i] - b[i]).abs();
                assert!(err <= 2, "seed {seed} pixel {i}: {} vs {}", back[i], b[i]);
            }
        }
    }

    #[test]
    fn linearity() {
        let a = ramp_block();
        let mut a2 = a;
        for v in a2.iter_mut() {
            *v *= 2;
        }
        let ca = fdct8x8(&a);
        let ca2 = fdct8x8(&a2);
        for i in 0..64 {
            assert!((ca2[i] - 2 * ca[i]).abs() <= 2, "coef {i}");
        }
    }
}
