//! Canonical (JPEG-style) Huffman coding, including the ITU-T T.81
//! Annex K default tables used by the IJG codec.

use crate::bitio::{BitReader, BitWriter};

/// A canonical Huffman table defined, as in JPEG, by the number of codes
/// of each length 1..=16 (`bits`) and the symbol values in code order
/// (`vals`).
#[derive(Debug, Clone)]
pub struct HuffTable {
    /// `(code, length)` per symbol, or length 0 when absent.
    enc: Vec<(u32, u32)>,
    // Standard JPEG decoding tables.
    mincode: [i32; 17],
    maxcode: [i32; 17],
    valptr: [usize; 17],
    vals: Vec<u8>,
}

impl HuffTable {
    /// Build from the `bits`/`vals` specification.
    ///
    /// # Panics
    ///
    /// Panics when the specification is over-subscribed (more codes of a
    /// length than a prefix code allows).
    pub fn new(bits: &[u8; 16], vals: &[u8]) -> Self {
        let total: usize = bits.iter().map(|&b| b as usize).sum();
        assert_eq!(total, vals.len(), "bits/vals mismatch");
        let mut enc = vec![(0u32, 0u32); 256];
        let mut mincode = [0i32; 17];
        let mut maxcode = [-1i32; 17];
        let mut valptr = [0usize; 17];
        let mut code: u32 = 0;
        let mut k = 0usize;
        for len in 1..=16usize {
            let n = bits[len - 1] as usize;
            assert!(
                (code as u64) + (n as u64) <= 1u64 << len,
                "over-subscribed at length {len}"
            );
            valptr[len] = k;
            mincode[len] = code as i32;
            for _ in 0..n {
                enc[vals[k] as usize] = (code, len as u32);
                code += 1;
                k += 1;
            }
            maxcode[len] = code as i32 - 1;
            if n == 0 {
                maxcode[len] = -1;
            }
            code <<= 1;
        }
        HuffTable {
            enc,
            mincode,
            maxcode,
            valptr,
            vals: vals.to_vec(),
        }
    }

    /// Code and length for `symbol`, or `None` when absent (for building
    /// derived tables).
    pub fn try_code(&self, symbol: u8) -> Option<(u32, u32)> {
        let (c, l) = self.enc[symbol as usize];
        (l > 0).then_some((c, l))
    }

    /// The canonical decoding tables `(mincode, maxcode, valptr, vals)`,
    /// indexed by code length 1..=16 (for building derived in-memory
    /// tables).
    pub fn decode_tables(&self) -> (&[i32; 17], &[i32; 17], &[usize; 17], &[u8]) {
        (&self.mincode, &self.maxcode, &self.valptr, &self.vals)
    }

    /// Code and length for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics when the symbol has no code in this table.
    pub fn code(&self, symbol: u8) -> (u32, u32) {
        let (c, l) = self.enc[symbol as usize];
        assert!(l > 0, "symbol {symbol:#x} not in table");
        (c, l)
    }

    /// Emit `symbol` into `w`.
    pub fn encode(&self, w: &mut BitWriter, symbol: u8) {
        let (c, l) = self.code(symbol);
        w.put(c, l);
    }

    /// Decode one symbol from `r`.
    ///
    /// # Panics
    ///
    /// Panics on a code not present in the table (corrupt stream).
    pub fn decode(&self, r: &mut BitReader) -> u8 {
        let mut code = 0i32;
        for len in 1..=16usize {
            code = (code << 1) | r.bit() as i32;
            if self.maxcode[len] >= 0 && code <= self.maxcode[len] && code >= self.mincode[len] {
                let ix = self.valptr[len] + (code - self.mincode[len]) as usize;
                return self.vals[ix];
            }
        }
        panic!("invalid huffman code in stream");
    }
}

/// Annex K default DC luminance table.
pub fn dc_luma() -> HuffTable {
    let bits = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
    let vals: Vec<u8> = (0..=11).collect();
    HuffTable::new(&bits, &vals)
}

/// Annex K default DC chrominance table.
pub fn dc_chroma() -> HuffTable {
    let bits = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0];
    let vals: Vec<u8> = (0..=11).collect();
    HuffTable::new(&bits, &vals)
}

/// Annex K default AC luminance table.
pub fn ac_luma() -> HuffTable {
    let bits = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125];
    let vals: [u8; 162] = [
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61,
        0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52,
        0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x25,
        0x26, 0x27, 0x28, 0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45,
        0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64,
        0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x83,
        0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99,
        0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
        0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3,
        0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8,
        0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
    ];
    HuffTable::new(&bits, &vals)
}

/// Annex K default AC chrominance table.
pub fn ac_chroma() -> HuffTable {
    let bits = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 119];
    let vals: [u8; 162] = [
        0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61,
        0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33,
        0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18,
        0x19, 0x1a, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44,
        0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63,
        0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a,
        0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97,
        0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
        0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca,
        0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7,
        0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
    ];
    HuffTable::new(&bits, &vals)
}

/// JPEG "magnitude category" of a value: the number of bits needed to
/// represent `|v|` (0 for 0).
pub fn magnitude(v: i32) -> u32 {
    32 - (v.unsigned_abs()).leading_zeros()
}

/// JPEG signed-magnitude extra bits for `v` in category `s`
/// (one's-complement encoding of negatives).
pub fn extend_bits(v: i32, s: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v - 1 + (1 << s)) as u32
    }
}

/// Inverse of [`extend_bits`].
pub fn extend(bits: u32, s: u32) -> i32 {
    if s == 0 {
        return 0;
    }
    let v = bits as i32;
    if v < (1 << (s - 1)) {
        v - (1 << s) + 1
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tables_build() {
        for t in [dc_luma(), dc_chroma(), ac_luma(), ac_chroma()] {
            // EOB-ish symbols must be present.
            let _ = t.code(0x01);
        }
    }

    #[test]
    fn all_symbols_roundtrip_through_the_bitstream() {
        let t = ac_luma();
        let symbols: Vec<u8> = vec![0x00, 0x01, 0x11, 0xf0, 0xfa, 0x53, 0x08];
        let mut w = BitWriter::new();
        for &s in &symbols {
            t.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(t.decode(&mut r), s);
        }
    }

    #[test]
    fn codes_are_prefix_free() {
        let t = dc_luma();
        let mut codes = Vec::new();
        for sym in 0..=11u8 {
            codes.push(t.code(sym));
        }
        for (i, &(ca, la)) in codes.iter().enumerate() {
            for &(cb, lb) in codes.iter().skip(i + 1) {
                let l = la.min(lb);
                assert_ne!(ca >> (la - l), cb >> (lb - l), "prefix collision");
            }
        }
    }

    #[test]
    fn magnitude_categories() {
        assert_eq!(magnitude(0), 0);
        assert_eq!(magnitude(1), 1);
        assert_eq!(magnitude(-1), 1);
        assert_eq!(magnitude(2), 2);
        assert_eq!(magnitude(-3), 2);
        assert_eq!(magnitude(255), 8);
        assert_eq!(magnitude(-1024), 11);
    }

    #[test]
    fn extend_roundtrips() {
        for v in [-2047, -255, -1, 0, 1, 17, 255, 2047] {
            let s = magnitude(v);
            assert_eq!(extend(extend_bits(v, s), s), v, "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "over-subscribed")]
    fn oversubscribed_spec_panics() {
        let mut bits = [0u8; 16];
        bits[0] = 3; // three 1-bit codes is impossible
        let _ = HuffTable::new(&bits, &[1, 2, 3]);
    }

    #[test]
    fn dc_encoding_of_typical_diffs() {
        // Encode/decode a DC difference sequence the way JPEG does.
        let t = dc_luma();
        let diffs = [0i32, 3, -3, 120, -120, 1023];
        let mut w = BitWriter::new();
        for &d in &diffs {
            let s = magnitude(d);
            t.encode(&mut w, s as u8);
            if s > 0 {
                w.put(extend_bits(d, s), s);
            }
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &d in &diffs {
            let s = t.decode(&mut r) as u32;
            let bits = if s > 0 { r.get(s) } else { 0 };
            assert_eq!(extend(bits, s), d);
        }
    }
}
