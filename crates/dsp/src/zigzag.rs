//! The JPEG/MPEG zig-zag scan order.

/// `ZIGZAG[k]` is the raster index of the k-th coefficient in zig-zag
/// order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Inverse mapping: `ZIGZAG_INV[raster] = zig-zag position`.
pub const ZIGZAG_INV: [usize; 64] = {
    let mut inv = [0usize; 64];
    let mut k = 0;
    while k < 64 {
        inv[ZIGZAG[k]] = k;
        k += 1;
    }
    inv
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &ix in &ZIGZAG {
            assert!(!seen[ix]);
            seen[ix] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn inverse_really_inverts() {
        for k in 0..64 {
            assert_eq!(ZIGZAG_INV[ZIGZAG[k]], k);
        }
    }

    #[test]
    fn scan_walks_antidiagonals() {
        // Positions along the scan have monotonically non-decreasing
        // (row+col) up to jitter of one diagonal.
        for k in 1..64 {
            let (r0, c0) = (ZIGZAG[k - 1] / 8, ZIGZAG[k - 1] % 8);
            let (r1, c1) = (ZIGZAG[k] / 8, ZIGZAG[k] % 8);
            let d0 = r0 + c0;
            let d1 = r1 + c1;
            assert!(d1 == d0 || d1 == d0 + 1, "step {k}");
        }
    }
}
