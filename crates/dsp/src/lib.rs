//! Shared DSP substrate for the JPEG and MPEG-2 codecs.
//!
//! These are *host-side reference implementations* — the fixed-point 8×8
//! DCT/IDCT, quantization tables, zig-zag ordering, bit-level I/O and
//! canonical (JPEG-style) Huffman coding that the paper's workloads
//! (IJG JPEG 6a, MSSG MPEG-2 1.1) build on. The emitter-based codecs in
//! `media-jpeg` / `media-mpeg` mirror these algorithms instruction by
//! instruction; the versions here pin down the expected outputs in tests
//! and provide table construction.

pub mod bitio;
pub mod dct;
pub mod huffman;
pub mod quant;
pub mod zigzag;

pub use bitio::{BitReader, BitWriter};
pub use dct::{fdct8x8, idct8x8};
pub use huffman::HuffTable;
pub use zigzag::{ZIGZAG, ZIGZAG_INV};
