//! Software-prefetch exploration (paper §4.2): how much of each
//! kernel's memory stall time does Mowry-style prefetching recover, and
//! what happens to the busy/stall split.
//!
//! ```text
//! cargo run --release --example prefetch_tuning
//! ```

use media_kernels::Variant;
use visim::bench::{Bench, WorkloadSize};
use visim::experiment::run_timed;
use visim::Arch;

fn main() {
    let mut size = WorkloadSize::tiny();
    size.image_w = 128;
    size.image_h = 80;
    size.dotprod_n = 32768;

    println!("software prefetching on the image kernels (4-way ooo):\n");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "kernel", "VIS", "VIS+PF", "speedup", "mem% before", "mem% after"
    );
    for bench in Bench::kernels() {
        let vis = run_timed(bench, Arch::Ooo4, None, &size, Variant::VIS);
        let pf = run_timed(bench, Arch::Ooo4, None, &size, Variant::VIS_PF);
        let mem_before = vis.cpu.breakdown().memory() / vis.cycles() as f64;
        let mem_after = pf.cpu.breakdown().memory() / pf.cycles() as f64;
        println!(
            "{:<10} {:>10} {:>10} {:>7.2}x {:>11.1}% {:>11.1}%",
            bench.name(),
            vis.cycles(),
            pf.cycles(),
            vis.cycles() as f64 / pf.cycles() as f64,
            100.0 * mem_before,
            100.0 * mem_after,
        );
    }
    println!(
        "\nPrefetching converts L1-miss stall into overlap; per the paper, \
         every kernel\nreverts to being compute-bound (memory fraction well \
         below half)."
    );
}
