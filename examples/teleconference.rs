//! The paper's motivating scenario (§1): a video-teleconferencing
//! pipeline — encode an outgoing camera stream, decode an incoming one,
//! and alpha-blend a logo overlay onto the displayed frames — simulated
//! end to end on three processor generations, with and without media
//! ISA extensions.
//!
//! ```text
//! cargo run --release --example teleconference
//! ```

use media_image::synth;
use media_kernels::{blend, SimImage, Variant};
use media_mpeg as mpeg;
use visim::Arch;
use visim_cpu::Pipeline;
use visim_mem::MemConfig;
use visim_trace::Program;

fn main() {
    let (w, h) = (48, 32);
    let outgoing = synth::video(w, h, 4, 11);
    let incoming = synth::video(w, h, 4, 22);
    let params = mpeg::MpegParams {
        search_range: 3,
        ..Default::default()
    };

    println!("teleconference frame pipeline ({w}x{h}, 4 frames):\n");
    println!(
        "{:<12} {:>14} {:>14} {:>9}",
        "config", "instructions", "cycles", "speedup"
    );
    let mut base_cycles = None;
    for variant in [Variant::SCALAR, Variant::VIS] {
        for arch in Arch::all() {
            let mut pipe = Pipeline::new(arch.cpu(), MemConfig::default());
            {
                let mut p = Program::new(&mut pipe);
                // Outgoing leg: encode the camera feed.
                let _sent = mpeg::encode(&mut p, &outgoing, &mpeg::gop_ibbp(), params, variant);
                // Incoming leg: encode (untimed stand-in for the remote
                // encoder happens here too — kept in-program so both
                // legs share the address space), then decode.
                let stream = mpeg::encode(&mut p, &incoming, &mpeg::gop_ibbp(), params, variant);
                let frames = mpeg::decode(&mut p, &stream, variant);
                // Display leg: blend a logo onto each decoded luma plane
                // (treated as a 1-band image).
                let logo = synth::alpha(w, h, 1, 3);
                let alpha = synth::alpha(w, h, 1, 4);
                for f in &frames {
                    let img = media_image::Image::from_raw(w, h, 1, f.y.clone());
                    let a = SimImage::from_image(&mut p, &img);
                    let l = SimImage::from_image(&mut p, &logo);
                    let al = SimImage::from_image(&mut p, &alpha);
                    let d = SimImage::alloc(&mut p, w, h, 1);
                    blend::blend(&mut p, &l, &a, &al, &d, variant);
                }
            }
            let s = pipe.finish();
            let base = *base_cycles.get_or_insert(s.cycles());
            println!(
                "{:<12} {:>14} {:>14} {:>8.2}x",
                format!("{}{}", if variant.vis { "VIS " } else { "" }, arch.label()),
                s.cpu.retired,
                s.cycles(),
                base as f64 / s.cycles() as f64
            );
        }
    }
    println!(
        "\nThe paper's headline: ILP features give 2.3-4.2x, VIS another \
         1.1-4.2x;\nthe combination makes real-time conferencing plausible \
         on a general-purpose core."
    );
}
