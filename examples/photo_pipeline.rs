//! A photo-editing pipeline (the paper's image-processing motivation):
//! decode a JPEG, sharpen it with a 3×3 convolution, intensity-scale
//! it, re-encode — measuring where the time goes at each stage and how
//! much of it VIS removes.
//!
//! ```text
//! cargo run --release --example photo_pipeline
//! ```

use media_jpeg as jpeg;
use media_kernels::{conv, pointwise, SimImage, Variant};
use visim_cpu::{CountingSink, CpuConfig, Pipeline};
use visim_mem::MemConfig;
use visim_trace::Program;

/// Run one stage in a fresh pipeline, returning (instructions, cycles).
fn staged<F>(variant: Variant, f: F) -> (u64, u64)
where
    F: FnOnce(&mut Program<Pipeline>, Variant),
{
    let mut pipe = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
    {
        let mut p = Program::new(&mut pipe);
        f(&mut p, variant);
    }
    let s = pipe.finish();
    (s.cpu.retired, s.cycles())
}

fn main() {
    let (w, h) = (96, 64);
    let photo = media_image::synth::still(w, h, 3, 5);

    // Prepare a compressed input once (untimed, like reading a file).
    let (bytes, meta) = {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let s = jpeg::encode(
            &mut p,
            &photo,
            jpeg::EncodeParams::default(),
            Variant::SCALAR,
        );
        (p.mem().bytes(s.addr, s.len).to_vec(), s)
    };
    println!("input photo: {w}x{h}, {} JPEG bytes\n", bytes.len());
    println!(
        "{:<10} {:>13} {:>13} {:>13} {:>13}",
        "stage", "scalar insts", "scalar cycles", "VIS insts", "VIS cycles"
    );

    for stage in ["decode", "sharpen", "scale", "encode"] {
        let mut cells = Vec::new();
        for variant in [Variant::SCALAR, Variant::VIS] {
            let bytes = bytes.clone();
            let (insts, cycles) = staged(variant, |p, v| match stage {
                "decode" => {
                    let addr = p.mem_mut().alloc(bytes.len(), 8);
                    p.mem_mut().write_bytes(addr, &bytes);
                    let stream = jpeg::JpegStream { addr, ..meta };
                    let _ = jpeg::decode(p, &stream, v);
                }
                "sharpen" => {
                    let a = SimImage::from_image(p, &photo);
                    let d = SimImage::alloc(p, w, h, 3);
                    conv::conv(p, &a, &d, &conv::SHARPEN, v);
                }
                "scale" => {
                    let a = SimImage::from_image(p, &photo);
                    let d = SimImage::alloc(p, w, h, 3);
                    pointwise::scaling(p, &a, &d, 307, -12, v);
                }
                "encode" => {
                    let _ = jpeg::encode(p, &photo, jpeg::EncodeParams::default(), v);
                }
                _ => unreachable!(),
            });
            cells.push((insts, cycles));
        }
        println!(
            "{:<10} {:>13} {:>13} {:>13} {:>13}   ({:.2}x)",
            stage,
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
            cells[0].1 as f64 / cells[1].1 as f64
        );
    }
    println!(
        "\nKernels (sharpen/scale) vectorize well; the entropy-coded JPEG \
         stages barely move —\nexactly the split the paper reports between \
         the VSDK kernels and cjpeg/djpeg."
    );
}
