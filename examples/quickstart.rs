//! Quickstart: simulate one image kernel on the paper's base machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use media_kernels::{pointwise, SimImage, Variant};
use visim_cpu::{CpuConfig, Pipeline};
use visim_mem::MemConfig;
use visim_trace::Program;

fn main() {
    // Two synthetic 128x80 RGB images (stand-ins for sf16/rose16.ppm).
    let img_a = media_image::synth::still(128, 80, 3, 1);
    let img_b = media_image::synth::still(128, 80, 3, 2);

    for (label, variant) in [("scalar", Variant::SCALAR), ("VIS", Variant::VIS)] {
        // A 4-way out-of-order pipeline over the Table 2/3 machine.
        let mut pipe = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        {
            // The emitter: every operation computes real pixels AND
            // feeds one dynamic instruction into the timing model.
            let mut p = Program::new(&mut pipe);
            let a = SimImage::from_image(&mut p, &img_a);
            let b = SimImage::from_image(&mut p, &img_b);
            let dst = SimImage::alloc(&mut p, 128, 80, 3);
            pointwise::addition(&mut p, &a, &b, &dst, variant);

            // The output is real data: check one pixel.
            let out = dst.to_image(&p);
            let want = ((img_a.get(5, 5, 0) as u32 + img_b.get(5, 5, 0) as u32) / 2) as u8;
            assert_eq!(out.get(5, 5, 0), want);
        }
        let s = pipe.finish();
        let bd = s.cpu.breakdown();
        println!(
            "{label:>6}: {:>9} instructions, {:>9} cycles  \
             (busy {:.0}%, fu-stall {:.0}%, L1-hit {:.0}%, L1-miss {:.0}%)",
            s.cpu.retired,
            s.cycles(),
            100.0 * bd.busy / s.cycles() as f64,
            100.0 * bd.fu_stall / s.cycles() as f64,
            100.0 * bd.l1_hit / s.cycles() as f64,
            100.0 * bd.l1_miss / s.cycles() as f64,
        );
    }
}
